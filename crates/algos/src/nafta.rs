//! NAFTA — New Adaptive Fault-Tolerant routing Algorithm (Cunningham &
//! Avresky \[CuA95\]), reconstructed from the paper's §2.2 description.
//!
//! NAFTA = NARA + fault tolerance:
//!
//! * **Fault states, propagated wave-like.** Fault information spreads by
//!   neighbour exchange "beginning with the node where a fault is known
//!   first". Three waves are implemented:
//!   1. *deactivation*: a healthy node with ≥ 2 unusable directions
//!      (dead link, dead neighbour, or deactivated neighbour) deactivates
//!      itself and announces it — iterated to a fixpoint this completes
//!      concave fault patterns to convex (rectangular) blocks, excluding
//!      some healthy nodes exactly as the paper says ("violating
//!      condition 3");
//!   2. *column fault*: a node with any dead link or deactivation floods
//!      "my column contains a fault" along its column;
//!   3. *dead-end east/west*: the paper's example state — "dead-end-east
//!      meaning that all columns to the east have at least one fault" —
//!      accumulated westward (resp. eastward) as an AND-chain over column
//!      faults. Used to steer misrouting away from hopeless regions.
//! * **Routing.** Fully adaptive minimal inside the NARA virtual networks
//!   while a safe minimal direction exists (condition 1). When faults block
//!   every minimal direction, the message is *misrouted* along the fault
//!   region boundary: it stays inside its virtual network (so no
//!   south-dependency can appear in network 0), never turns back through
//!   its arrival port (no 180° dependency), is marked `misrouted` in the
//!   header, and carries the hop counter as livelock bound (§3).
//! * **Decision steps.** One rule interpretation in the fault-free case,
//!   two when fault state restricts the choice, three when misrouting —
//!   matching the §5 claim "NAFTA in the fault-free case proceeds with one
//!   step and in the worst case needs three".

use crate::common::{allocatable, least_loaded, max_hops};
use crate::nara::{required_vnet, VNET_NO_NORTH, VNET_NO_SOUTH};
use ftr_sim::flit::Header;
use ftr_sim::routing::{
    ControlMsg, Decision, NodeController, RouterView, RoutingAlgorithm, Verdict,
};
use ftr_topo::{Mesh2D, NodeId, PortId, Topology, VcId, EAST, NORTH, SOUTH, WEST};

/// Control-message tags.
const TAG_DEACT: i64 = 1;
const TAG_COLFAULT: i64 = 2;
const TAG_DEADEND_E: i64 = 3;
const TAG_DEADEND_W: i64 = 4;
const TAG_LINKS: i64 = 5;
/// Reconfiguration wave after a repair: `[TAG_RESET, epoch]`. All wave
/// state is accumulated monotonically (OR), so un-learning a repaired
/// fault needs an explicit epoch-tagged reset flood — every node clears
/// its remote-derived state, re-derives local contributions and
/// re-announces, re-running the §2.2 propagation from scratch.
const TAG_RESET: i64 = 6;

/// The NAFTA algorithm.
#[derive(Clone)]
pub struct Nafta {
    mesh: Mesh2D,
}

impl Nafta {
    /// Creates NAFTA for a mesh.
    pub fn new(mesh: Mesh2D) -> Self {
        Nafta { mesh }
    }
}

impl RoutingAlgorithm for Nafta {
    fn name(&self) -> String {
        "nafta".into()
    }

    fn num_vcs(&self) -> usize {
        2
    }

    fn controller(&self, _topo: &dyn Topology, node: NodeId) -> Box<dyn NodeController> {
        Box::new(NaftaController::new(self.mesh.clone(), node))
    }
}

/// Per-node NAFTA state (the registers of Table 1).
pub struct NaftaController {
    mesh: Mesh2D,
    node: NodeId,
    hop_limit: u32,
    /// Direction unusable: dead link or dead neighbour (locally observed).
    link_dead: [bool; 4],
    /// Neighbour announced it is deactivated (or faulty).
    neighbor_unsafe: [bool; 4],
    /// This node completed a concave fault pattern and took itself out.
    deactivated: bool,
    /// Column-fault knowledge from north/south segments of the own column.
    col_seg: [bool; 2], // [from north, from south]
    /// Dead-end accumulators received from east/west neighbours.
    de_in: [bool; 2], // [from east: all columns east faulty, from west]
    /// Dead-link bitmask each neighbour advertised (bit = direction index
    /// at the neighbour).
    nb_dead: [u8; 4],
    /// Last values sent per (port, tag-slot) to avoid re-flooding.
    last_sent: [[Option<i64>; 5]; 4],
    /// Reconfiguration epoch: bumped by each repair-triggered reset wave so
    /// concurrent/stale waves are absorbed instead of looping forever.
    epoch: u64,
}

impl NaftaController {
    fn new(mesh: Mesh2D, node: NodeId) -> Self {
        let hop_limit = max_hops(mesh.num_nodes());
        NaftaController {
            mesh,
            node,
            hop_limit,
            link_dead: [false; 4],
            neighbor_unsafe: [false; 4],
            deactivated: false,
            col_seg: [false; 2],
            de_in: [false; 2],
            nb_dead: [0; 4],
            last_sent: [[None; 5]; 4],
            epoch: 0,
        }
    }

    /// Joins reconfiguration epoch `e`: forgets every remote-derived fact,
    /// re-derives the local ones, and floods both the reset marker and the
    /// fresh announcements to all reachable neighbours.
    fn start_reset(&mut self, e: u64) -> Vec<ControlMsg> {
        self.epoch = e;
        self.neighbor_unsafe = [false; 4];
        self.deactivated = false;
        self.col_seg = [false; 2];
        self.de_in = [false; 2];
        self.nb_dead = [0; 4];
        self.last_sent = [[None; 5]; 4];
        self.update_deactivation();
        let mut out: Vec<ControlMsg> = ftr_topo::mesh::MESH_PORTS
            .iter()
            .filter(|&&p| self.mesh.neighbor(self.node, p).is_some() && !self.link_dead[p.idx()])
            .map(|&p| ControlMsg { port: p, payload: vec![TAG_RESET, e as i64] })
            .collect();
        out.extend(self.broadcast_updates());
        out
    }

    /// Local contribution to the column-fault wave.
    fn col_contrib(&self) -> bool {
        self.deactivated || self.link_dead.iter().any(|&b| b)
    }

    /// This node's column is known to contain a fault.
    pub fn col_fault(&self) -> bool {
        self.col_contrib() || self.col_seg[0] || self.col_seg[1]
    }

    /// Dead-end-east: every column strictly east contains a fault.
    /// Vacuously true on the east border.
    pub fn dead_end_east(&self) -> bool {
        let (x, _) = self.mesh.coords(self.node);
        if x + 1 == self.mesh.width() {
            true
        } else {
            self.de_in[0]
        }
    }

    /// Dead-end-west analog.
    pub fn dead_end_west(&self) -> bool {
        let (x, _) = self.mesh.coords(self.node);
        if x == 0 {
            true
        } else {
            self.de_in[1]
        }
    }

    /// True once the node deactivated itself.
    pub fn is_deactivated(&self) -> bool {
        self.deactivated
    }

    /// A direction is unusable for forwarding: boundary, dead, or leads to
    /// a deactivated node (other than the destination itself).
    fn dir_blocked(&self, d: PortId, dst: NodeId) -> bool {
        match self.mesh.neighbor(self.node, d) {
            None => true,
            Some(nb) => self.link_dead[d.idx()] || (self.neighbor_unsafe[d.idx()] && nb != dst),
        }
    }

    /// Recomputes the deactivation predicate; returns true if it flipped.
    fn update_deactivation(&mut self) -> bool {
        if self.deactivated {
            return false;
        }
        let bad = ftr_topo::mesh::MESH_PORTS
            .iter()
            .filter(|&&d| {
                self.mesh.neighbor(self.node, d).is_some()
                    && (self.link_dead[d.idx()] || self.neighbor_unsafe[d.idx()])
            })
            .count();
        if bad >= 2 {
            self.deactivated = true;
            true
        } else {
            false
        }
    }

    /// Emits every control value whose content changed since last sent.
    fn broadcast_updates(&mut self) -> Vec<ControlMsg> {
        let mut out = Vec::new();
        let deact = i64::from(self.deactivated);
        // column wave: northward message carries info about the southern
        // segment (own contribution + what the south told us) and vice versa
        let col_to_north = i64::from(self.col_contrib() || self.col_seg[1]);
        let col_to_south = i64::from(self.col_contrib() || self.col_seg[0]);
        // dead-end waves: westward message = own column fault AND all east
        let de_to_west = i64::from(self.col_fault() && self.dead_end_east());
        let de_to_east = i64::from(self.col_fault() && self.dead_end_west());

        let dead_mask: i64 =
            self.link_dead.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| 1i64 << i).sum();
        let plan: [(PortId, i64, usize, i64); 12] = [
            (EAST, TAG_DEACT, 0, deact),
            (WEST, TAG_DEACT, 0, deact),
            (NORTH, TAG_DEACT, 0, deact),
            (SOUTH, TAG_DEACT, 0, deact),
            (NORTH, TAG_COLFAULT, 1, col_to_north),
            (SOUTH, TAG_COLFAULT, 1, col_to_south),
            (WEST, TAG_DEADEND_E, 2, de_to_west),
            (EAST, TAG_DEADEND_W, 3, de_to_east),
            (EAST, TAG_LINKS, 4, dead_mask),
            (WEST, TAG_LINKS, 4, dead_mask),
            (NORTH, TAG_LINKS, 4, dead_mask),
            (SOUTH, TAG_LINKS, 4, dead_mask),
        ];
        for (port, tag, slot, val) in plan {
            if self.mesh.neighbor(self.node, port).is_none() || self.link_dead[port.idx()] {
                continue;
            }
            if self.last_sent[port.idx()][slot] == Some(val) {
                continue;
            }
            // deactivation is only worth announcing once true
            if tag == TAG_DEACT && val == 0 {
                continue;
            }
            if tag == TAG_COLFAULT && val == 0 && self.last_sent[port.idx()][slot].is_none() {
                continue; // quiet default
            }
            if (tag == TAG_DEADEND_E || tag == TAG_DEADEND_W || tag == TAG_LINKS)
                && val == 0
                && self.last_sent[port.idx()][slot].is_none()
            {
                continue;
            }
            self.last_sent[port.idx()][slot] = Some(val);
            out.push(ControlMsg { port, payload: vec![tag, val] });
        }
        out
    }

    /// Directions a message may take inside its virtual network.
    ///
    /// Network 0 routes E/W/N only. Network 1 routes E/W/S plus a
    /// *committed* north climb: a message may turn into north to recover
    /// an overshot destination row, but only from the destination column,
    /// and turns *out of* north are banned — once climbing it climbs until
    /// delivery. 180-degree turns are banned in both networks. Messages may
    /// switch networks 0 -> 1 (never back), so cross-network dependencies
    /// are one-way and the combined channel dependency graph stays acyclic.
    fn allowed_dirs(
        &self,
        vnet: u8,
        in_port: Option<PortId>,
        in_vc: Option<u8>,
        dx: i32,
        dy: i32,
    ) -> Vec<PortId> {
        // committed climb: the message was *already in network 1* and
        // moving north (a message that arrived northbound on channel 0 and
        // switched networks is not climbing — it was escaping)
        if in_vc == Some(VNET_NO_NORTH) && in_port == Some(SOUTH) {
            return vec![NORTH];
        }
        let _ = vnet == VNET_NO_NORTH; // network passed for the direction set below
        let mut dirs = vec![EAST, WEST];
        if vnet == VNET_NO_SOUTH {
            dirs.push(NORTH);
        } else {
            dirs.push(SOUTH);
            // terminal climb: only from the destination column
            if dx == 0 && dy > 0 {
                dirs.push(NORTH);
            }
        }
        dirs.retain(|&d| Some(d) != in_port); // no 180-degree turns
        dirs
    }

    /// One-hop trap lookahead: would forwarding through `d` enter a node
    /// that (given the virtual network and the banned turns) has no exit?
    /// Uses the dead-link sets neighbours advertise over the control plane
    /// — this is exactly the "set 1" fault information of §2.2.
    fn enters_trap(&self, d: PortId, vnet: u8, dst: NodeId) -> bool {
        let Some(nb) = self.mesh.neighbor(self.node, d) else { return true };
        if nb == dst {
            return false;
        }
        let (dx2, dy2) = self.mesh.offset(nb, dst);
        let vnet2 = Self::effective_vnet(vnet, dy2);
        // exits the message would have at nb (arriving from opposite(d))
        let exits: Vec<PortId> = if vnet == VNET_NO_NORTH && d == NORTH {
            vec![NORTH] // committed climb continues north
        } else {
            let entry = ftr_topo::mesh::opposite(d);
            self.allowed_dirs(vnet2, Some(entry), Some(vnet), dx2, dy2)
        };
        !exits.iter().any(|&e| {
            self.mesh.neighbor(nb, e).is_some() && (self.nb_dead[d.idx()] >> e.idx()) & 1 == 0
        })
    }

    /// The virtual network a message decides in: network 0 messages that
    /// overshot their destination row (now need south) switch one-way to
    /// network 1.
    fn effective_vnet(in_vc: u8, dy: i32) -> u8 {
        if in_vc == VNET_NO_SOUTH && dy < 0 {
            VNET_NO_NORTH
        } else {
            in_vc
        }
    }

    /// Candidate outputs for a message, with the step count of the
    /// decision. Deterministic in (node, dst, vnet, in_port) so the same
    /// function backs `route` and `relation`.
    fn candidates(
        &self,
        dst: NodeId,
        vnet: u8,
        in_port: Option<PortId>,
        in_vc: Option<u8>,
    ) -> (Vec<PortId>, u32, bool) {
        let (dx, dy) = self.mesh.offset(self.node, dst);
        let allowed = self.allowed_dirs(vnet, in_port, in_vc, dx, dy);
        let minimal = self.mesh.minimal_directions(self.node, dst);
        let allowed_min: Vec<PortId> =
            minimal.iter().copied().filter(|d| allowed.contains(d)).collect();
        let open_min: Vec<PortId> = allowed_min
            .iter()
            .copied()
            .filter(|&d| !self.dir_blocked(d, dst) && !self.enters_trap(d, vnet, dst))
            .collect();
        let fault_involved = open_min.len() != allowed_min.len();
        if !open_min.is_empty() {
            return (open_min, if fault_involved { 2 } else { 1 }, false);
        }
        // misroute along the region boundary, preference-ordered
        let vertical = if vnet == VNET_NO_SOUTH { NORTH } else { SOUTH };
        let (towards, away) = if dx >= 0 { (EAST, WEST) } else { (WEST, EAST) };
        // only let the dead-end state veto the towards-side when the
        // destination is strictly on the other side — at dx == 0 the
        // message may well need to loop around through the "dead-end"
        // region (its columns have faults, not walls)
        let towards_dead_end = match towards {
            p if p == EAST => self.dead_end_east() && dx < 0,
            _ => self.dead_end_west() && dx > 0,
        };
        let (h1, h2) = if towards_dead_end { (away, towards) } else { (towards, away) };
        // in network 0 a north escape is always recoverable (one-way
        // switch); in network 1 a south escape past the destination row is
        // not, so prefer horizontal escapes unless south still helps
        let vertical_first = vnet == VNET_NO_SOUTH || dy < 0;
        let prefs: Vec<PortId> =
            if vertical_first { vec![vertical, h1, h2] } else { vec![h1, h2, vertical] };
        let opts: Vec<PortId> = prefs
            .into_iter()
            .filter(|d| allowed.contains(d))
            .filter(|&d| !self.dir_blocked(d, dst) && !self.enters_trap(d, vnet, dst))
            .collect();
        (opts, 3, true)
    }
}

impl NodeController for NaftaController {
    fn route(
        &mut self,
        view: &RouterView<'_>,
        h: &mut Header,
        in_port: Option<PortId>,
        in_vc: VcId,
    ) -> Decision {
        if h.hops > self.hop_limit {
            return Decision::new(Verdict::Unroutable, 3);
        }
        if view.node == h.dst {
            return Decision::new(Verdict::Deliver, 1);
        }
        let (_, dy) = self.mesh.offset(view.node, h.dst);
        let vnets: Vec<u8> = if in_port.is_some() {
            vec![Self::effective_vnet(in_vc.idx() as u8, dy)]
        } else {
            match required_vnet(dy) {
                Some(v) => vec![v],
                None => vec![VNET_NO_SOUTH, VNET_NO_NORTH],
            }
        };

        let in_vc_opt = in_port.map(|_| in_vc.idx() as u8);
        let mut best: Option<(Vec<PortId>, u32, bool, u8)> = None;
        for &v in &vnets {
            let (opts, steps, misroute) = self.candidates(h.dst, v, in_port, in_vc_opt);
            if opts.is_empty() {
                continue;
            }
            let better = match &best {
                None => true,
                Some((_, bsteps, _, _)) => steps < *bsteps,
            };
            if better {
                best = Some((opts, steps, misroute, v));
            }
        }
        let Some((opts, steps, misroute, vnet)) = best else {
            return Decision::new(Verdict::Unroutable, 3);
        };

        let cand: Vec<(PortId, VcId)> = opts.iter().map(|&p| (p, VcId(vnet))).collect();
        let avail = allocatable(view, &cand);
        let pick = if misroute {
            // boundary traversal follows the preference order strictly
            avail.first().copied()
        } else {
            least_loaded(view, &avail)
        };
        if let Some((p, vcid)) = pick {
            h.vnet = vnet;
            if misroute {
                h.misrouted = true;
            }
            Decision::new(Verdict::Route(p, vcid), steps)
        } else {
            Decision::new(Verdict::Wait, steps)
        }
    }

    fn relation(
        &mut self,
        view: &RouterView<'_>,
        h: &Header,
        in_port: Option<PortId>,
        in_vc: VcId,
    ) -> Vec<(PortId, VcId)> {
        if view.node == h.dst {
            return Vec::new();
        }
        let (_, dy) = self.mesh.offset(view.node, h.dst);
        let vnets: Vec<u8> = if in_port.is_some() {
            vec![Self::effective_vnet(in_vc.idx() as u8, dy)]
        } else {
            match required_vnet(dy) {
                Some(v) => vec![v],
                None => vec![VNET_NO_SOUTH, VNET_NO_NORTH],
            }
        };
        let in_vc_opt = in_port.map(|_| in_vc.idx() as u8);
        let mut out = Vec::new();
        for &v in &vnets {
            let (opts, _steps, _mis) = self.candidates(h.dst, v, in_port, in_vc_opt);
            for p in opts {
                if view.link_alive[p.idx()] {
                    out.push((p, VcId(v)));
                }
            }
        }
        out
    }

    fn on_fault(&mut self, _view: &RouterView<'_>, port: PortId) -> Vec<ControlMsg> {
        self.link_dead[port.idx()] = true;
        self.update_deactivation();
        self.broadcast_updates()
    }

    fn on_repair(&mut self, _view: &RouterView<'_>, port: PortId) -> Vec<ControlMsg> {
        self.link_dead[port.idx()] = false;
        self.start_reset(self.epoch + 1)
    }

    fn on_control(
        &mut self,
        _view: &RouterView<'_>,
        from: PortId,
        payload: &[i64],
    ) -> Vec<ControlMsg> {
        if payload.len() != 2 {
            return Vec::new();
        }
        let (tag, val) = (payload[0], payload[1] != 0);
        if tag == TAG_RESET {
            let e = payload[1] as u64;
            if e > self.epoch {
                // first contact with this reconfiguration wave: clear and
                // re-announce everywhere (forwards the wave itself too)
                return self.start_reset(e);
            }
            // duplicate/stale wave: the sender just cleared its state, so
            // everything we already told it is forgotten — re-send
            self.last_sent[from.idx()] = [None; 5];
            return self.broadcast_updates();
        }
        // TAG_LINKS carries a bitmask, handled below with the raw payload
        match tag {
            TAG_DEACT if val => {
                self.neighbor_unsafe[from.idx()] = true;
                self.update_deactivation();
            }
            TAG_COLFAULT => {
                // from NORTH = information about the column segment above
                if from == NORTH {
                    self.col_seg[0] |= val;
                } else if from == SOUTH {
                    self.col_seg[1] |= val;
                }
            }
            TAG_DEADEND_E if from == EAST => {
                self.de_in[0] |= val;
            }
            TAG_DEADEND_W if from == WEST => {
                self.de_in[1] |= val;
            }
            TAG_LINKS => {
                self.nb_dead[from.idx()] |= payload[1] as u8;
            }
            _ => {}
        }
        self.broadcast_updates()
    }

    fn state_word(&self) -> i64 {
        i64::from(self.deactivated)
            | (i64::from(self.dead_end_east()) << 1)
            | (i64::from(self.dead_end_west()) << 2)
            | (i64::from(self.col_fault()) << 3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftr_sim::{Network, Pattern, TrafficSource};
    use ftr_topo::FaultSet;
    use std::sync::Arc;

    fn net_with(mesh: &Mesh2D, faults: &[(u32, u32, PortId)]) -> Network {
        let topo = Arc::new(mesh.clone());
        let mut net =
            Network::builder(topo.clone()).build(&Nafta::new(mesh.clone())).expect("valid config");
        for &(x, y, p) in faults {
            net.inject_link_fault(topo.node_at(x, y), p);
        }
        net.settle_control(10_000).expect("settles");
        net
    }

    #[test]
    fn behaves_like_nara_when_fault_free() {
        let mesh = Mesh2D::new(4, 4);
        let mut net = net_with(&mesh, &[]);
        net.set_measuring(true);
        for a in mesh.nodes() {
            for b in mesh.nodes() {
                if a != b {
                    net.send(a, b, 2).unwrap();
                }
            }
        }
        assert!(net.drain(100_000));
        assert_eq!(net.stats.delivered_msgs, 240);
        assert_eq!(net.stats.excess_hops, 0);
        assert_eq!(net.stats.decision_steps.max, 1, "one interpretation fault-free");
    }

    #[test]
    fn routes_around_single_link_fault() {
        let mesh = Mesh2D::new(4, 4);
        let mut net = net_with(&mesh, &[(1, 1, EAST)]);
        net.set_measuring(true);
        for a in mesh.nodes() {
            for b in mesh.nodes() {
                if a != b {
                    net.send(a, b, 2).unwrap();
                }
            }
        }
        assert!(net.drain(200_000), "all messages deliverable around one fault");
        assert_eq!(net.stats.delivered_msgs, 240);
        assert!(!net.stats.deadlock);
    }

    #[test]
    fn worst_case_needs_up_to_three_steps() {
        let mesh = Mesh2D::new(5, 5);
        // block the whole minimal quadrant exit of (2,2) towards east
        let mut net = net_with(&mesh, &[(2, 2, EAST), (2, 2, NORTH)]);
        net.set_measuring(true);
        net.send(mesh.node_at(2, 2), mesh.node_at(4, 4), 2).unwrap();
        assert!(net.drain(10_000));
        assert_eq!(net.stats.delivered_msgs, 1);
        assert_eq!(net.stats.decision_steps.max, 3, "misroute decision = 3 steps");
    }

    #[test]
    fn concave_pattern_deactivates_corner_node() {
        // L-shaped fault around (2,2): dead links to its east and north
        // neighbours leave it with 2 unusable directions -> deactivated
        let mesh = Mesh2D::new(5, 5);
        let net = net_with(&mesh, &[(2, 2, EAST), (2, 2, NORTH)]);
        let sw = net.controller(mesh.node_at(2, 2)).state_word();
        assert_eq!(sw & 1, 1, "corner of concave pattern deactivates");
        // its neighbours have only one bad direction each -> stay active
        let w = net.controller(mesh.node_at(1, 2)).state_word();
        assert_eq!(w & 1, 0);
    }

    #[test]
    fn deactivation_wave_completes_rectangles() {
        // two deactivating nodes in a row merge into a block: (1,2) and
        // (2,2) each lose their north and south links
        let mesh = Mesh2D::new(5, 5);
        let net = net_with(&mesh, &[(1, 2, NORTH), (1, 2, SOUTH), (2, 2, NORTH), (2, 2, SOUTH)]);
        assert_eq!(net.controller(mesh.node_at(1, 2)).state_word() & 1, 1);
        assert_eq!(net.controller(mesh.node_at(2, 2)).state_word() & 1, 1);
        // (0,2) now sees a dead-ended east neighbour? it has one unusable
        // direction (east neighbour deactivated) -> still active
        assert_eq!(net.controller(mesh.node_at(0, 2)).state_word() & 1, 0);
    }

    #[test]
    fn dead_end_east_wave() {
        // make every column east of x=1 contain a fault: nodes (2,*), (3,*),
        // (4,*) — one dead link per column suffices for the column wave
        let mesh = Mesh2D::new(5, 3);
        let net = net_with(&mesh, &[(2, 1, NORTH), (3, 0, NORTH), (4, 1, SOUTH)]);
        // node (1,1): all columns east (2,3,4) have faults
        let sw = net.controller(mesh.node_at(1, 1)).state_word();
        assert_eq!((sw >> 1) & 1, 1, "dead-end-east set");
        // node (3,1) is itself in a faulty column; columns east of it (4)
        // all faulty -> dead-end-east too
        let sw3 = net.controller(mesh.node_at(3, 1)).state_word();
        assert_eq!((sw3 >> 1) & 1, 1);
        // node (2,1): column 3 and 4 east are faulty -> dead-end-east; but
        // (0,1) westwards: column west of nothing... check west flag clear
        let sw0 = net.controller(mesh.node_at(1, 1)).state_word();
        assert_eq!((sw0 >> 2) & 1, 0, "west is clean (border col 0 is healthy)");
    }

    #[test]
    fn cdg_acyclic_even_with_faults() {
        let mesh = Mesh2D::new(5, 5);
        let algo = Nafta::new(mesh.clone());
        for seed in [1u64, 7, 23] {
            let mut faults = FaultSet::new();
            faults.inject_random_links(&mesh, 4, true, seed);
            let g = crate::conditions::build_cdg(&mesh, &algo, &faults);
            assert!(!g.has_cycle(), "seed {seed}: cycle {:?}", g.find_cycle());
        }
    }

    #[test]
    fn conditions_fault_free() {
        let mesh = Mesh2D::new(4, 4);
        let algo = Nafta::new(mesh.clone());
        let rep = crate::conditions::check_conditions(&mesh, &algo, &FaultSet::new(), None);
        assert_eq!(rep.cond1_ok, rep.cond1_pairs, "fully adaptive minimal");
        assert_eq!(rep.cond2_ok, rep.cond2_pairs);
        assert_eq!(rep.cond3_ok, rep.cond3_pairs);
    }

    #[test]
    fn conditions_mostly_hold_with_sparse_faults() {
        let mesh = Mesh2D::new(5, 5);
        let algo = Nafta::new(mesh.clone());
        let mut faults = FaultSet::new();
        faults.inject_random_links(&mesh, 3, true, 13);
        let rep = crate::conditions::check_conditions(&mesh, &algo, &faults, None);
        // condition 2 should hold for the overwhelming majority
        assert!(ConditionsReport::ratio(rep.cond2_ok, rep.cond2_pairs) > 0.9, "{rep:?}");
        // condition 3 may be violated (convex completion) but rarely here
        assert!(ConditionsReport::ratio(rep.cond3_ok, rep.cond3_pairs) > 0.85, "{rep:?}");
        use crate::conditions::ConditionsReport;
    }

    #[test]
    fn sustained_traffic_with_faults_drains() {
        let mesh = Mesh2D::new(6, 6);
        let topo = Arc::new(mesh.clone());
        let mut net =
            Network::builder(topo.clone()).build(&Nafta::new(mesh.clone())).expect("valid config");
        net.inject_link_fault(topo.node_at(2, 2), EAST);
        net.inject_link_fault(topo.node_at(3, 3), NORTH);
        net.settle_control(10_000).unwrap();
        let mut tf = TrafficSource::new(Pattern::Uniform, 0.2, 4, 11);
        for _ in 0..1_500 {
            for (s, d, l) in tf.tick(topo.as_ref(), net.faults()) {
                net.send(s, d, l).unwrap();
            }
            net.step();
        }
        assert!(net.drain(30_000), "drains despite faults");
        assert!(!net.stats.deadlock);
        assert!(net.stats.delivered_msgs > 500);
        assert_eq!(net.stats.unroutable_msgs, 0);
    }

    #[test]
    fn repair_reset_wave_restores_fault_free_state() {
        let mesh = Mesh2D::new(5, 5);
        let topo = Arc::new(mesh.clone());
        // baseline state words of a never-faulted network (the dead-end
        // flags are vacuously true on the borders, so "fully reset" means
        // "identical to fresh", not "all zero")
        let fresh =
            Network::builder(topo.clone()).build(&Nafta::new(mesh.clone())).expect("valid config");
        let baseline: Vec<i64> = mesh.nodes().map(|n| fresh.controller(n).state_word()).collect();

        let mut net =
            Network::builder(topo.clone()).build(&Nafta::new(mesh.clone())).expect("valid config");
        net.inject_link_fault(topo.node_at(2, 2), EAST);
        net.inject_link_fault(topo.node_at(2, 2), NORTH);
        net.settle_control(10_000).expect("settles");
        assert_eq!(net.controller(mesh.node_at(2, 2)).state_word() & 1, 1, "deactivated");

        net.repair_link(topo.node_at(2, 2), EAST);
        net.repair_link(topo.node_at(2, 2), NORTH);
        net.settle_control(10_000).expect("reset wave settles");
        let after: Vec<i64> = mesh.nodes().map(|n| net.controller(n).state_word()).collect();
        assert_eq!(after, baseline, "every node un-learned the repaired faults");

        // and routing is fully minimal again
        net.set_measuring(true);
        for a in mesh.nodes() {
            for b in mesh.nodes() {
                if a != b {
                    net.send(a, b, 2).unwrap();
                }
            }
        }
        assert!(net.drain(200_000));
        assert_eq!(net.stats.delivered_msgs, 600);
        assert_eq!(net.stats.excess_hops, 0, "minimal routing restored");
        assert_eq!(net.stats.decision_steps.max, 1, "fault-free decisions again");
    }

    #[test]
    fn partial_repair_keeps_remaining_fault_knowledge() {
        // faults in columns 2 and 3; repairing column 2's must not erase
        // what the network knows about column 3's
        let mesh = Mesh2D::new(5, 3);
        let topo = Arc::new(mesh.clone());
        let mut net =
            Network::builder(topo.clone()).build(&Nafta::new(mesh.clone())).expect("valid config");
        net.inject_link_fault(topo.node_at(2, 1), NORTH);
        net.inject_link_fault(topo.node_at(3, 0), NORTH);
        net.settle_control(10_000).expect("settles");
        assert_eq!((net.controller(mesh.node_at(2, 0)).state_word() >> 3) & 1, 1);
        assert_eq!((net.controller(mesh.node_at(3, 1)).state_word() >> 3) & 1, 1);

        net.repair_link(topo.node_at(2, 1), NORTH);
        net.settle_control(10_000).expect("reset settles");
        // column 2 clean again, column 3 still known faulty
        assert_eq!((net.controller(mesh.node_at(2, 0)).state_word() >> 3) & 1, 0);
        assert_eq!((net.controller(mesh.node_at(3, 1)).state_word() >> 3) & 1, 1);
    }

    #[test]
    fn dynamic_fault_mid_run_recovers() {
        let mesh = Mesh2D::new(6, 6);
        let topo = Arc::new(mesh.clone());
        let mut net =
            Network::builder(topo.clone()).build(&Nafta::new(mesh.clone())).expect("valid config");
        let mut tf = TrafficSource::new(Pattern::Uniform, 0.15, 4, 21);
        for cycle in 0..2_000u32 {
            if cycle == 700 {
                net.inject_link_fault(topo.node_at(3, 3), EAST);
            }
            if cycle == 900 {
                net.inject_node_fault(topo.node_at(1, 4));
            }
            for (s, d, l) in tf.tick(topo.as_ref(), net.faults()) {
                net.send(s, d, l).unwrap();
            }
            net.step();
        }
        let drained = net.drain(30_000);
        assert!(
            drained,
            "in_flight={} deadlock={} delivered={} killed={} unroutable={}\n{}",
            net.in_flight(),
            net.stats.deadlock,
            net.stats.delivered_msgs,
            net.stats.killed_msgs,
            net.stats.unroutable_msgs,
            net.dump_occupancy()
        );
        assert!(!net.stats.deadlock);
        // ripped worms are bounded (a handful at the fault instant)
        assert!(net.stats.killed_msgs < 20, "killed {}", net.stats.killed_msgs);
        assert!(net.stats.delivered_msgs > 400);
    }
}
