//! # ftr-algos — routing algorithms, native and rule-based
//!
//! The algorithms evaluated in the paper and their baselines, each as a
//! native implementation of [`ftr_sim::routing::RoutingAlgorithm`], plus
//! the rule-language source programs that the rule-based router compiles
//! (shipped in `crates/algos/rules/` and embedded via [`rules_src`]):
//!
//! * [`dor`] — dimension-order XY / e-cube (oblivious baselines),
//! * [`turn`] — west-first turn model (partially adaptive baseline),
//! * [`nara`] — fully adaptive minimal mesh routing over two virtual
//!   networks (the non-fault-tolerant base of NAFTA),
//! * [`nafta`] — NAFTA: NARA + wave-propagated fault states, convex fault
//!   region completion and boundary misrouting,
//! * [`route_c`] — ROUTE_C on hypercubes: safety states and two-phase
//!   routing on five virtual channels,
//! * [`negative_hop`] — the diameter-many-VCs static scheme of \[BoC96\]
//!   (§3's "no changes to the deadlock avoidance are necessary at all"),
//! * [`spanning_tree`] — the §2.1 spanning-tree strawman,
//! * [`conditions`] — empirical checks of conditions 1–3 and the
//!   channel-dependency deadlock bridge.

pub mod common;
pub mod conditions;
pub mod dor;
pub mod nafta;
pub mod nara;
pub mod negative_hop;
pub mod route_c;
pub mod rules_src;
pub mod spanning_tree;
pub mod turn;

pub use conditions::{build_cdg, check_conditions, ConditionsReport};
pub use dor::{EcubeRouting, KAryDor, XyRouting};
pub use nafta::Nafta;
pub use nara::Nara;
pub use negative_hop::NegativeHop;
pub use route_c::RouteC;
pub use spanning_tree::SpanningTreeRouting;
pub use turn::WestFirst;
