//! The rule-language source programs shipped with the crate.
//!
//! These are the inputs to the rule compiler / cost model; the bench
//! binaries `table1` and `table2` run [`ftr_rules::cost::analyze`] on
//! [`NAFTA`] and [`ROUTE_C`] to regenerate the paper's tables.

use ftr_rules::{parse, Program, Result};

/// XY dimension-order routing (oblivious baseline; drives the rule router
/// in the quickstart example).
pub const XY: &str = include_str!("../rules/xy.rules");

/// West-first turn-model routing (the "new algorithm = new rule program"
/// flexibility demo).
pub const WEST_FIRST: &str = include_str!("../rules/west_first.rules");

/// NAFTA — all eleven rule bases of Table 1; the NFT-marked subset is NARA.
pub const NAFTA: &str = include_str!("../rules/nafta.rules");

/// ROUTE_C — the four rule bases of Table 2 (d = 6, a = 2).
pub const ROUTE_C: &str = include_str!("../rules/route_c.rules");

/// The stripped non-fault-tolerant ROUTE_C variant.
pub const ROUTE_C_NFT: &str = include_str!("../rules/route_c_nft.rules");

/// Naive fully-adaptive minimal routing on one virtual channel — the
/// classic deadlock/livelock baseline (any free minimal direction, no
/// turn restriction). Negative exemplar for the deadlock verifier and
/// the FTR013 progress lint.
pub const NAIVE_ADAPTIVE: &str = include_str!("../rules/naive_adaptive.rules");

/// Parses one of the shipped programs (they are tested to parse; this
/// returns `Result` so callers can reuse it for user-supplied sources).
pub fn parse_program(src: &str) -> Result<Program> {
    parse(src)
}

/// All shipped programs as `(name, source)` pairs.
pub fn all() -> Vec<(&'static str, &'static str)> {
    vec![
        ("xy", XY),
        ("west_first", WEST_FIRST),
        ("nafta", NAFTA),
        ("route_c", ROUTE_C),
        ("route_c_nft", ROUTE_C_NFT),
        ("naive_adaptive", NAIVE_ADAPTIVE),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftr_rules::{compile, CompileOptions};

    #[test]
    fn all_programs_parse() {
        for (name, src) in all() {
            parse_program(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn all_programs_compile() {
        for (name, src) in all() {
            let p = parse_program(src).unwrap();
            compile(&p, &CompileOptions::default()).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn nafta_has_the_eleven_table1_bases() {
        let p = parse_program(NAFTA).unwrap();
        let names: Vec<&str> = p.rulebases.iter().map(|r| r.name.as_str()).collect();
        for expected in [
            "incoming_message",
            "in_message_ft",
            "update_dir_table",
            "message_finished",
            "calculate_new_node_state",
            "test_exception",
            "tell_my_neighbors",
            "flit_finished",
            "fault_occured",
            "message_from_info_channel",
            "consider_neighbor_state",
        ] {
            assert!(names.contains(&expected), "missing rule base {expected}");
        }
        assert_eq!(p.rulebases.len(), 11);
    }

    #[test]
    fn nafta_nft_subset_matches_paper() {
        let p = parse_program(NAFTA).unwrap();
        let nft: Vec<&str> =
            p.rulebases.iter().filter(|r| r.nft).map(|r| r.name.as_str()).collect();
        assert_eq!(
            nft,
            vec![
                "incoming_message",
                "message_finished",
                "tell_my_neighbors",
                "flit_finished",
                "message_from_info_channel",
            ],
            "the (*) column of Table 1"
        );
    }

    #[test]
    fn route_c_has_the_table2_bases() {
        let p = parse_program(ROUTE_C).unwrap();
        let names: Vec<&str> = p.rulebases.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["decide_dir", "decide_vc", "update_state", "adaptivity"]);
        let nft: Vec<&str> =
            p.rulebases.iter().filter(|r| r.nft).map(|r| r.name.as_str()).collect();
        assert_eq!(nft, vec!["decide_dir", "adaptivity"], "the (*) column of Table 2");
    }
}

/// Generates the ROUTE_C rule program for an arbitrary hypercube dimension
/// (the shipped [`ROUTE_C`] constant is the d = 6, a = 2 instance used by
/// Table 2). This is the practical upside the paper claims over
/// table-based routers: supporting a different network size means
/// regenerating and recompiling the rule program, not new silicon.
pub fn route_c_source(dim: u32) -> String {
    assert!((2..=16).contains(&dim), "hypercube dimension out of range");
    let d = dim;
    let dm1 = d - 1;
    let count_hi = d + 1; // counters range 0..=d
    format!(
        "-- ROUTE_C rule program, generated for a {d}-dimensional hypercube
CONSTANT dims = 0 TO {dm1}
CONSTANT vcsd = 0 TO 4
CONSTANT phases = 0 TO 1
CONSTANT fault_states = {{safe, lfault, ounsafe, sunsafe, faulty}}

VARIABLE state IN fault_states INIT safe
VARIABLE neighb_state[dims] IN fault_states INIT safe
VARIABLE number_unsafe IN 0 TO {count_hi} INIT 0
VARIABLE number_faulty IN 0 TO {count_hi} INIT 0
VARIABLE adapt IN 0 TO 3 INIT 0
VARIABLE chosen IN dims INIT 0
VARIABLE load_est[dims] IN 0 TO 255

INPUT diffup IN SETOF dims
INPUT diffdown IN SETOF dims
INPUT okdirs IN SETOF dims
INPUT cands IN SETOF dims
INPUT out_queue[dims] IN 0 TO 255
INPUT new_state[dims] IN fault_states
INPUT phase IN phases
INPUT misr IN bool
INPUT freevc[vcsd] IN bool

ON decide_dir() RETURNS SETOF dims NFT
  IF NOT (card(isect(diffup, okdirs)) = 0) THEN RETURN(isect(diffup, okdirs));
  IF NOT (card(isect(diffdown, okdirs)) = 0) THEN RETURN(isect(diffdown, okdirs));
  IF TRUE THEN RETURN(diff(okdirs, union(diffup, diffdown)));
END decide_dir;

ON decide_vc() RETURNS 0 TO 7
  IF misr AND freevc(2) THEN chosen <- argmin(out_queue, cands), RETURN(2);
  IF misr AND freevc(3) THEN chosen <- argmin(out_queue, cands), RETURN(3);
  IF misr AND freevc(4) THEN chosen <- argmin(out_queue, cands), RETURN(4);
  IF misr THEN RETURN(7);
  IF phase = 0 AND freevc(0)
    THEN chosen <- argmin(out_queue, cands),
         adapt <- min(adapt + 1, 3),
         RETURN(0);
  IF phase = 1 AND freevc(1)
    THEN chosen <- argmin(out_queue, cands),
         adapt <- min(adapt + 1, 3),
         RETURN(1);
  IF TRUE THEN RETURN(7);
END decide_vc;

ON update_state(dir IN dims)
  IF new_state(dir) IN {{faulty, lfault}} AND number_faulty = 0
    THEN neighb_state(dir) <- new_state(dir),
         number_faulty <- number_faulty + 1,
         number_unsafe <- number_unsafe + 1;
  IF new_state(dir) IN {{faulty, lfault}} AND number_faulty = 1 AND state = safe
    THEN state <- ounsafe,
         number_faulty <- min(number_faulty + 1, {count_hi}),
         number_unsafe <- min(number_unsafe + 1, {count_hi}),
         FORALL i IN dims: !send_newmessage(i, 2),
         neighb_state(dir) <- new_state(dir);
  IF new_state(dir) IN {{faulty, lfault}} AND number_faulty > 0
    THEN neighb_state(dir) <- new_state(dir),
         number_faulty <- min(number_faulty + 1, {count_hi}),
         number_unsafe <- min(number_unsafe + 1, {count_hi});
  IF new_state(dir) IN {{sunsafe, ounsafe}} AND state = safe AND number_unsafe = 2
    THEN state <- ounsafe,
         number_unsafe <- number_unsafe + 1,
         FORALL i IN dims: !send_newmessage(i, 2),
         neighb_state(dir) <- new_state(dir);
  IF new_state(dir) IN {{sunsafe, ounsafe}} AND number_unsafe = {dm1}
    THEN state <- latmax(state, sunsafe),
         number_unsafe <- number_unsafe + 1,
         FORALL i IN dims: !send_newmessage(i, 3),
         neighb_state(dir) <- new_state(dir);
  IF new_state(dir) IN {{sunsafe, ounsafe}}
    THEN neighb_state(dir) <- new_state(dir),
         number_unsafe <- min(number_unsafe + 1, {count_hi});
END update_state;

ON adaptivity(dir IN dims) NFT
  IF load_est(dir) < 255 THEN load_est(dir) <- load_est(dir) + 1;
END adaptivity;
"
    )
}

#[cfg(test)]
mod gen_tests {
    use super::*;
    use ftr_rules::{compile, CompileOptions};

    #[test]
    fn generated_route_c_compiles_for_many_dims() {
        for d in [3u32, 4, 5, 6, 8] {
            let src = route_c_source(d);
            let p = parse_program(&src).unwrap_or_else(|e| panic!("d={d}: {e}"));
            compile(&p, &CompileOptions::default()).unwrap_or_else(|e| panic!("d={d}: {e}"));
            assert_eq!(p.rulebases.len(), 4);
        }
    }

    #[test]
    fn generated_matches_shipped_structure_at_d6() {
        let p = parse_program(&route_c_source(6)).unwrap();
        let shipped = parse_program(ROUTE_C).unwrap();
        let names: Vec<_> = p.rulebases.iter().map(|r| r.name.clone()).collect();
        let shipped_names: Vec<_> = shipped.rulebases.iter().map(|r| r.name.clone()).collect();
        assert_eq!(names, shipped_names);
    }
}
