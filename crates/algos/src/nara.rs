//! NARA — the non-fault-tolerant, fully adaptive minimal mesh router
//! underlying NAFTA (Cunningham & Avresky \[CuA95\], as described in §2.2).
//!
//! Deadlock prevention follows the turn-model scheme the paper sketches:
//! "Two virtual channels are used per link forming two virtual networks,
//! called south-last and north-last. By prohibiting a direction change for
//! messages that once have been transmitted southern (resp. northern),
//! cycles of dependencies are avoided."
//!
//! Concretely: virtual network 0 never routes south, network 1 never routes
//! north. A message needing to travel north is injected into network 0,
//! where *every* turn among {E, W, N} is legal — a dependency cycle in a
//! mesh must contain both a north and a south hop, so each network is
//! acyclic on its own and minimal routing inside it is *fully* adaptive
//! (condition 1). The adaptivity criterion is NAFTA's: prefer the output
//! with the least data still assigned to it.

use crate::common::{allocatable, least_loaded, max_hops};
use ftr_sim::flit::Header;
use ftr_sim::routing::{Decision, NodeController, RouterView, RoutingAlgorithm, Verdict};
use ftr_topo::{Mesh2D, NodeId, PortId, Topology, VcId, NORTH, SOUTH};

/// Virtual network 0: may route E/W/N (south-last-free).
pub const VNET_NO_SOUTH: u8 = 0;
/// Virtual network 1: may route E/W/S.
pub const VNET_NO_NORTH: u8 = 1;

/// Returns the virtual network a message must use, or `None` when either
/// works (pure horizontal movement).
pub fn required_vnet(dy: i32) -> Option<u8> {
    if dy > 0 {
        Some(VNET_NO_SOUTH)
    } else if dy < 0 {
        Some(VNET_NO_NORTH)
    } else {
        None
    }
}

/// True if `dir` is legal inside virtual network `vnet`.
pub fn dir_allowed(vnet: u8, dir: PortId) -> bool {
    match vnet {
        VNET_NO_SOUTH => dir != SOUTH,
        VNET_NO_NORTH => dir != NORTH,
        _ => false,
    }
}

/// The NARA algorithm.
#[derive(Clone)]
pub struct Nara {
    mesh: Mesh2D,
}

impl Nara {
    /// Creates NARA for a mesh.
    pub fn new(mesh: Mesh2D) -> Self {
        Nara { mesh }
    }

    /// The mesh.
    pub fn mesh(&self) -> &Mesh2D {
        &self.mesh
    }
}

impl RoutingAlgorithm for Nara {
    fn name(&self) -> String {
        "nara".into()
    }

    fn num_vcs(&self) -> usize {
        2
    }

    fn controller(&self, _topo: &dyn Topology, _node: NodeId) -> Box<dyn NodeController> {
        Box::new(NaraController {
            mesh: self.mesh.clone(),
            hop_limit: max_hops(self.mesh.num_nodes()),
        })
    }
}

struct NaraController {
    mesh: Mesh2D,
    hop_limit: u32,
}

impl NaraController {
    /// Minimal directions legal in `vnet`.
    fn candidates(&self, node: NodeId, dst: NodeId, vnet: u8) -> Vec<(PortId, VcId)> {
        self.mesh
            .minimal_directions(node, dst)
            .into_iter()
            .filter(|&d| dir_allowed(vnet, d))
            .map(|d| (d, VcId(vnet)))
            .collect()
    }
}

impl NodeController for NaraController {
    fn route(
        &mut self,
        view: &RouterView<'_>,
        h: &mut Header,
        in_port: Option<PortId>,
        in_vc: VcId,
    ) -> Decision {
        if h.hops > self.hop_limit {
            return Decision::new(Verdict::Unroutable, 1);
        }
        if view.node == h.dst {
            return Decision::new(Verdict::Deliver, 1);
        }
        let (_, dy) = self.mesh.offset(view.node, h.dst);
        // the virtual network is fixed at injection; in flight it equals
        // the arrival VC
        let vnets: Vec<u8> = if in_port.is_some() {
            vec![in_vc.idx() as u8]
        } else {
            match required_vnet(dy) {
                Some(v) => vec![v],
                None => vec![VNET_NO_SOUTH, VNET_NO_NORTH],
            }
        };

        let mut all: Vec<(PortId, VcId)> = Vec::new();
        let mut any_alive = false;
        for &v in &vnets {
            for (p, vc) in self.candidates(view.node, h.dst, v) {
                if view.link_alive[p.idx()] {
                    any_alive = true;
                }
                all.push((p, vc));
            }
        }
        let avail = allocatable(view, &all);
        if let Some((p, vc)) = least_loaded(view, &avail) {
            h.vnet = vc.idx() as u8;
            return Decision::new(Verdict::Route(p, vc), 1);
        }
        if any_alive {
            Decision::new(Verdict::Wait, 1)
        } else {
            // NARA has no fault handling: a broken minimal path is fatal
            Decision::new(Verdict::Unroutable, 1)
        }
    }

    fn relation(
        &mut self,
        view: &RouterView<'_>,
        h: &Header,
        in_port: Option<PortId>,
        in_vc: VcId,
    ) -> Vec<(PortId, VcId)> {
        if view.node == h.dst {
            return Vec::new();
        }
        let (_, dy) = self.mesh.offset(view.node, h.dst);
        let vnets: Vec<u8> = if in_port.is_some() {
            vec![in_vc.idx() as u8]
        } else {
            match required_vnet(dy) {
                Some(v) => vec![v],
                None => vec![VNET_NO_SOUTH, VNET_NO_NORTH],
            }
        };
        vnets
            .iter()
            .flat_map(|&v| self.candidates(view.node, h.dst, v))
            .filter(|(p, _)| view.link_alive[p.idx()])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftr_sim::{Network, Pattern, TrafficSource};
    use std::sync::Arc;

    #[test]
    fn vnet_selection() {
        assert_eq!(required_vnet(3), Some(VNET_NO_SOUTH));
        assert_eq!(required_vnet(-1), Some(VNET_NO_NORTH));
        assert_eq!(required_vnet(0), None);
        assert!(dir_allowed(VNET_NO_SOUTH, NORTH));
        assert!(!dir_allowed(VNET_NO_SOUTH, SOUTH));
        assert!(!dir_allowed(VNET_NO_NORTH, NORTH));
    }

    #[test]
    fn all_pairs_delivered_minimally() {
        let mesh = Mesh2D::new(4, 4);
        let topo = Arc::new(mesh.clone());
        let mut net = Network::builder(topo.clone()).build(&Nara::new(mesh)).expect("valid config");
        net.set_measuring(true);
        for a in topo.nodes() {
            for b in topo.nodes() {
                if a != b {
                    net.send(a, b, 2).unwrap();
                }
            }
        }
        assert!(net.drain(100_000));
        assert_eq!(net.stats.delivered_msgs, 240);
        assert_eq!(net.stats.excess_hops, 0, "fully adaptive *minimal*");
        assert!(!net.stats.deadlock);
    }

    #[test]
    fn sustained_uniform_load_no_deadlock() {
        let mesh = Mesh2D::new(6, 6);
        let topo = Arc::new(mesh.clone());
        let mut net = Network::builder(topo.clone()).build(&Nara::new(mesh)).expect("valid config");
        let mut tf = TrafficSource::new(Pattern::Uniform, 0.3, 4, 5);
        for _ in 0..2_000 {
            for (s, d, l) in tf.tick(topo.as_ref(), net.faults()) {
                net.send(s, d, l).unwrap();
            }
            net.step();
        }
        assert!(net.drain(20_000), "NARA drains under sustained load");
        assert!(!net.stats.deadlock);
    }

    #[test]
    fn cdg_is_acyclic_fully_adaptive() {
        // the core deadlock-freedom claim: fully adaptive minimal over two
        // virtual networks has an acyclic channel dependency graph
        let mesh = Mesh2D::new(4, 4);
        let algo = Nara::new(mesh.clone());
        let g = crate::conditions::build_cdg(&mesh, &algo, &ftr_topo::FaultSet::new());
        assert!(!g.has_cycle(), "NARA dependency cycle: {:?}", g.find_cycle());
    }

    #[test]
    fn condition1_holds_fault_free() {
        let mesh = Mesh2D::new(4, 4);
        let algo = Nara::new(mesh.clone());
        let rep =
            crate::conditions::check_conditions(&mesh, &algo, &ftr_topo::FaultSet::new(), None);
        assert_eq!(rep.cond1_pairs, rep.cond1_ok, "every minimal path selectable");
        assert_eq!(rep.cond2_pairs, rep.cond2_ok);
        assert_eq!(rep.cond3_pairs, rep.cond3_ok);
    }

    #[test]
    fn fault_on_only_path_is_fatal() {
        let mesh = Mesh2D::new(4, 4);
        let topo = Arc::new(mesh.clone());
        let mut net = Network::builder(topo.clone()).build(&Nara::new(mesh)).expect("valid config");
        // cut both minimal first hops from the corner for dst (1,1):
        net.inject_link_fault(topo.node_at(0, 0), ftr_topo::EAST);
        net.inject_link_fault(topo.node_at(0, 0), NORTH);
        net.send(topo.node_at(0, 0), topo.node_at(1, 1), 2).unwrap();
        net.run(100);
        assert_eq!(net.stats.unroutable_msgs, 1);
    }
}
