//! ROUTE_C — fault-tolerant hypercube routing (Chiu & Wu \[ChW96\]), as
//! described in the paper's §2.2.
//!
//! * **Node safety states** `{safe, lfault, ounsafe, sunsafe, faulty}`
//!   ordered as a finite lattice (state updates are monotone joins, which
//!   is why "the propagation scheme settles fast" — experiment E10).
//!   A node with a faulty link is at least `lfault`; a node with ≥ 2
//!   unsafe/faulty neighbours (or ends of two faulty links) becomes
//!   *ordinarily unsafe*; with ≥ d-1 it is *strongly unsafe*. Unsafe nodes
//!   are avoided by transit messages.
//! * **Two-phase minimal routing** (\[Kon90\] style): first resolve all
//!   dimensions whose coordinate increases (virtual channel 0), then all
//!   decreasing dimensions (channel 1). Each hop in a phase is monotone in
//!   the node id, so both phase networks are acyclic.
//! * **Fault mode**: when every minimal dimension is blocked, the message
//!   is misrouted over a spare dimension using the three additional
//!   virtual channels (2–4) — the paper: "an extension of four additional
//!   virtual channels is used in the hops-so-far scheme ... by applying the
//!   method from \[BoC96\] three additional virtual channels suffice",
//!   hence ROUTE_C's total of **five** VCs.
//! * **Decision cost**: every message needs *two* consecutive rule
//!   interpretations (`decide_dir` then `decide_vc`); the stripped
//!   non-fault-tolerant variant needs one (§5).

use crate::common::{allocatable, least_loaded, max_hops};
use ftr_sim::flit::Header;
use ftr_sim::routing::{
    ControlMsg, Decision, NodeController, RouterView, RoutingAlgorithm, Verdict,
};
use ftr_topo::{Hypercube, NodeId, PortId, Topology, VcId};

/// Reconfiguration wave after a repair: payload `[RC_TAG_RESET, epoch]`.
/// State announcements are single-word payloads, so the two-word reset
/// marker can never be mistaken for one. The safety lattice only ever
/// joins upward, so un-learning a repaired fault requires this explicit
/// epoch-tagged reset flood: clear remote knowledge, re-derive the local
/// state from scratch, re-announce.
const RC_TAG_RESET: i64 = 100;

/// ROUTE_C node safety states, ordered as the update lattice.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SafetyState {
    /// Fully operational.
    Safe = 0,
    /// Has at least one faulty link.
    LinkFault = 1,
    /// Ordinarily unsafe (≥ 2 unsafe/faulty neighbours or faulty links).
    OrdUnsafe = 2,
    /// Strongly unsafe (≥ d-1).
    StrUnsafe = 3,
    /// The node itself failed.
    Faulty = 4,
}

impl SafetyState {
    fn from_i64(v: i64) -> SafetyState {
        match v {
            1 => SafetyState::LinkFault,
            2 => SafetyState::OrdUnsafe,
            3 => SafetyState::StrUnsafe,
            4 => SafetyState::Faulty,
            _ => SafetyState::Safe,
        }
    }

    /// Unsafe or worse — avoided by transit messages.
    pub fn is_unsafe(&self) -> bool {
        *self >= SafetyState::OrdUnsafe
    }
}

/// The ROUTE_C algorithm (or its stripped non-fault-tolerant variant).
#[derive(Clone)]
pub struct RouteC {
    cube: Hypercube,
    stripped: bool,
}

impl RouteC {
    /// Full fault-tolerant ROUTE_C (5 virtual channels, 2 steps/decision).
    pub fn new(cube: Hypercube) -> Self {
        RouteC { cube, stripped: false }
    }

    /// The stripped variant: same fault-free behaviour, no fault handling,
    /// two virtual channels, one interpretation per message.
    pub fn stripped(cube: Hypercube) -> Self {
        RouteC { cube, stripped: true }
    }
}

impl RoutingAlgorithm for RouteC {
    fn name(&self) -> String {
        if self.stripped {
            "route_c_nft".into()
        } else {
            "route_c".into()
        }
    }

    fn num_vcs(&self) -> usize {
        if self.stripped {
            2
        } else {
            5
        }
    }

    fn controller(&self, _topo: &dyn Topology, node: NodeId) -> Box<dyn NodeController> {
        let dim = self.cube.dim() as usize;
        Box::new(RouteCController {
            cube: self.cube.clone(),
            node,
            stripped: self.stripped,
            hop_limit: max_hops(self.cube.num_nodes()),
            link_dead: vec![false; dim],
            neighbor_state: vec![SafetyState::Safe; dim],
            state: SafetyState::Safe,
            last_announced: None,
            epoch: 0,
        })
    }
}

/// Per-node ROUTE_C controller (the `update_state` registers of Table 2).
pub struct RouteCController {
    cube: Hypercube,
    node: NodeId,
    stripped: bool,
    hop_limit: u32,
    link_dead: Vec<bool>,
    neighbor_state: Vec<SafetyState>,
    state: SafetyState,
    last_announced: Option<SafetyState>,
    /// Reconfiguration epoch: bumped by repair-triggered reset waves so
    /// concurrent/stale waves are absorbed instead of looping forever.
    epoch: u64,
}

impl RouteCController {
    /// The safety state implied by current local knowledge (Table 2).
    fn compute_state(&self) -> SafetyState {
        let dim = self.cube.dim() as usize;
        let bad = (0..dim)
            .filter(|&d| {
                self.link_dead[d]
                    || self.neighbor_state[d].is_unsafe()
                    || self.neighbor_state[d] == SafetyState::Faulty
            })
            .count();
        let mut computed = SafetyState::Safe;
        if self.link_dead.iter().any(|&b| b) {
            computed = computed.max(SafetyState::LinkFault);
        }
        if bad >= 2 {
            computed = computed.max(SafetyState::OrdUnsafe);
        }
        if bad >= dim.saturating_sub(1).max(2) {
            computed = computed.max(SafetyState::StrUnsafe);
        }
        computed
    }

    /// Announces the current state to all live neighbours if it changed
    /// since the last announcement (Safe is the quiet default).
    fn announce(&mut self) -> Vec<ControlMsg> {
        if self.last_announced == Some(self.state) || self.state == SafetyState::Safe {
            return Vec::new();
        }
        self.last_announced = Some(self.state);
        let dim = self.cube.dim() as usize;
        (0..dim)
            .filter(|&d| !self.link_dead[d])
            .map(|d| ControlMsg { port: PortId(d as u8), payload: vec![self.state as i64] })
            .collect()
    }

    /// Monotone state recomputation; announces on change.
    fn update_state(&mut self) -> Vec<ControlMsg> {
        self.state = self.state.max(self.compute_state()); // lattice join: monotone
        self.announce()
    }

    /// Joins reconfiguration epoch `e`: forgets neighbour states, rebuilds
    /// the own state from local knowledge only (the one place the lattice
    /// may move *down*), and floods the reset marker plus a fresh
    /// announcement.
    fn start_reset(&mut self, e: u64) -> Vec<ControlMsg> {
        self.epoch = e;
        let dim = self.cube.dim() as usize;
        self.neighbor_state = vec![SafetyState::Safe; dim];
        self.state = self.compute_state();
        self.last_announced = None;
        let mut out: Vec<ControlMsg> = (0..dim)
            .filter(|&d| !self.link_dead[d])
            .map(|d| ControlMsg { port: PortId(d as u8), payload: vec![RC_TAG_RESET, e as i64] })
            .collect();
        out.extend(self.announce());
        out
    }

    /// Candidate dimensions for the current phase. Returns
    /// `(ports, phase, misroute)` where phase 0 = increasing coordinates,
    /// 1 = decreasing (the deadlock scheme "first all links with increasing
    /// coordinates ... afterwards all links with decreasing coordinates").
    fn decide_dir(&self, dst: NodeId) -> (Vec<PortId>, u8, bool) {
        let diff = self.cube.diff(self.node, dst);
        let dim = self.cube.dim();
        let increasing: Vec<PortId> = (0..dim)
            .filter(|i| diff & (1 << i) != 0 && self.node.0 & (1 << i) == 0)
            .map(|i| PortId(i as u8))
            .collect();
        let decreasing: Vec<PortId> = (0..dim)
            .filter(|i| diff & (1 << i) != 0 && self.node.0 & (1 << i) != 0)
            .map(|i| PortId(i as u8))
            .collect();
        let (minimal, phase) =
            if !increasing.is_empty() { (increasing, 0u8) } else { (decreasing, 1u8) };
        let usable = |p: &PortId| -> bool {
            if self.link_dead[p.idx()] {
                return false;
            }
            if self.stripped {
                return true;
            }
            let nb = self.cube.neighbor(self.node, *p).expect("cube port");
            // avoid unsafe transit nodes, but always allow the destination
            nb == dst || !self.neighbor_state[p.idx()].is_unsafe()
        };
        let open: Vec<PortId> = minimal.iter().copied().filter(usable).collect();
        if !open.is_empty() || self.stripped {
            return (open, phase, false);
        }
        // fault mode (the extra virtual channels): prefer dimensions that
        // are still minimal — just in the other phase — over spare
        // dimensions that lengthen the path
        let mut mis: Vec<PortId> = (0..dim)
            .map(|i| PortId(i as u8))
            .filter(|p| diff & (1 << p.idx()) != 0)
            .filter(usable)
            .collect();
        mis.extend(
            (0..dim).map(|i| PortId(i as u8)).filter(|p| diff & (1 << p.idx()) == 0).filter(usable),
        );
        (mis, phase, true)
    }

    /// The VC range legal for `(phase, misroute)` — `decide_vc`'s job.
    fn vc_range(&self, phase: u8, misroute: bool) -> std::ops::Range<usize> {
        if self.stripped {
            return (phase as usize)..(phase as usize + 1);
        }
        if misroute {
            2..5
        } else {
            (phase as usize)..(phase as usize + 1)
        }
    }
}

impl NodeController for RouteCController {
    fn route(
        &mut self,
        view: &RouterView<'_>,
        h: &mut Header,
        _in_port: Option<PortId>,
        _in_vc: VcId,
    ) -> Decision {
        let steps = if self.stripped { 1 } else { 2 };
        if h.hops > self.hop_limit {
            return Decision::new(Verdict::Unroutable, steps);
        }
        if view.node == h.dst {
            return Decision::new(Verdict::Deliver, steps);
        }
        let (ports, phase, misroute) = self.decide_dir(h.dst);
        if ports.is_empty() {
            return Decision::new(Verdict::Unroutable, steps);
        }
        let vcr = self.vc_range(phase, misroute);
        let cand: Vec<(PortId, VcId)> =
            ports.iter().flat_map(|&p| vcr.clone().map(move |v| (p, VcId(v as u8)))).collect();
        let avail = allocatable(view, &cand);
        // misrouting follows decide_dir's preference order (minimal dims of
        // the other phase first); normal routing balances load
        let pick = if misroute { avail.first().copied() } else { least_loaded(view, &avail) };
        if let Some((p, v)) = pick {
            h.phase = phase;
            if misroute {
                h.misrouted = true;
            }
            Decision::new(Verdict::Route(p, v), steps)
        } else {
            Decision::new(Verdict::Wait, steps)
        }
    }

    fn relation(
        &mut self,
        view: &RouterView<'_>,
        h: &Header,
        _in_port: Option<PortId>,
        _in_vc: VcId,
    ) -> Vec<(PortId, VcId)> {
        if view.node == h.dst {
            return Vec::new();
        }
        let (ports, phase, misroute) = self.decide_dir(h.dst);
        let vcr = self.vc_range(phase, misroute);
        ports
            .iter()
            .filter(|p| view.link_alive[p.idx()])
            .flat_map(|&p| vcr.clone().map(move |v| (p, VcId(v as u8))))
            .collect()
    }

    fn on_fault(&mut self, _view: &RouterView<'_>, port: PortId) -> Vec<ControlMsg> {
        self.link_dead[port.idx()] = true;
        self.update_state()
    }

    fn on_repair(&mut self, _view: &RouterView<'_>, port: PortId) -> Vec<ControlMsg> {
        self.link_dead[port.idx()] = false;
        self.start_reset(self.epoch + 1)
    }

    fn on_control(
        &mut self,
        _view: &RouterView<'_>,
        from: PortId,
        payload: &[i64],
    ) -> Vec<ControlMsg> {
        if payload.len() == 2 && payload[0] == RC_TAG_RESET {
            let e = payload[1] as u64;
            if e > self.epoch {
                // first contact with this wave: clear, re-derive, forward
                return self.start_reset(e);
            }
            // duplicate/stale wave: the sender just forgot our state — make
            // the next announcement unconditional
            self.last_announced = None;
            return self.announce();
        }
        if payload.len() != 1 {
            return Vec::new();
        }
        let s = SafetyState::from_i64(payload[0]);
        if s > self.neighbor_state[from.idx()] {
            self.neighbor_state[from.idx()] = s;
            self.update_state()
        } else {
            Vec::new()
        }
    }

    fn state_word(&self) -> i64 {
        self.state as i64
    }
}

/// True if every alive node of the network is unsafe — ROUTE_C's "totally
/// unsafe" condition, under which condition 3 no longer holds. The paper:
/// "this will only occur if more than n-1 nodes are faulty."
pub fn totally_unsafe(states: &[SafetyState]) -> bool {
    states.iter().all(|s| s.is_unsafe() || *s == SafetyState::Faulty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftr_sim::{Network, Pattern, TrafficSource};
    use ftr_topo::FaultSet;
    use std::sync::Arc;

    fn cube_net(dim: u32, node_faults: &[u32]) -> (Arc<Hypercube>, Network) {
        let cube = Hypercube::new(dim);
        let topo = Arc::new(cube.clone());
        let mut net =
            Network::builder(topo.clone()).build(&RouteC::new(cube)).expect("valid config");
        for &n in node_faults {
            net.inject_node_fault(NodeId(n));
        }
        net.settle_control(10_000).expect("settles");
        (topo, net)
    }

    #[test]
    fn all_pairs_fault_free_minimal() {
        let (topo, mut net) = cube_net(4, &[]);
        net.set_measuring(true);
        for a in topo.nodes() {
            for b in topo.nodes() {
                if a != b {
                    net.send(a, b, 2).unwrap();
                }
            }
        }
        assert!(net.drain(200_000));
        assert_eq!(net.stats.delivered_msgs, 240);
        assert_eq!(net.stats.excess_hops, 0);
        assert_eq!(net.stats.decision_steps.max, 2, "always two interpretations");
    }

    #[test]
    fn stripped_variant_single_step() {
        let cube = Hypercube::new(4);
        let topo = Arc::new(cube.clone());
        let mut net =
            Network::builder(topo.clone()).build(&RouteC::stripped(cube)).expect("valid config");
        net.set_measuring(true);
        for a in topo.nodes() {
            for b in topo.nodes() {
                if a != b {
                    net.send(a, b, 2).unwrap();
                }
            }
        }
        assert!(net.drain(200_000));
        assert_eq!(net.stats.delivered_msgs, 240);
        assert_eq!(net.stats.decision_steps.max, 1);
    }

    #[test]
    fn routes_around_faulty_node() {
        let (topo, mut net) = cube_net(4, &[5]);
        net.set_measuring(true);
        for a in topo.nodes() {
            for b in topo.nodes() {
                if a != b && a != NodeId(5) && b != NodeId(5) {
                    net.send(a, b, 2).unwrap();
                }
            }
        }
        assert!(net.drain(300_000));
        assert_eq!(net.stats.delivered_msgs, 15 * 14);
        assert!(!net.stats.deadlock);
        assert_eq!(net.stats.unroutable_msgs, 0);
    }

    #[test]
    fn unsafe_state_on_two_bad_neighbors() {
        // node 0's neighbours 1 and 2 fail -> node 0 has two faulty
        // neighbours -> ordinarily unsafe (plus lfault from dead links)
        let (_, net) = cube_net(4, &[1, 2]);
        let s = SafetyState::from_i64(net.controller(NodeId(0)).state_word());
        assert!(s.is_unsafe(), "state {s:?}");
        // a node far away (15 = !0) stays safe
        let far = SafetyState::from_i64(net.controller(NodeId(15)).state_word());
        assert_eq!(far, SafetyState::Safe);
    }

    #[test]
    fn lfault_state_on_single_link_fault() {
        let cube = Hypercube::new(3);
        let topo = Arc::new(cube.clone());
        let mut net =
            Network::builder(topo.clone()).build(&RouteC::new(cube)).expect("valid config");
        net.inject_link_fault(NodeId(0), PortId(0));
        net.settle_control(1_000).unwrap();
        let s = SafetyState::from_i64(net.controller(NodeId(0)).state_word());
        assert_eq!(s, SafetyState::LinkFault);
        assert!(!s.is_unsafe(), "lfault alone does not exclude the node");
    }

    #[test]
    fn propagation_settles_quickly() {
        // monotone lattice -> settles in O(diameter) control steps
        let (_, mut net) = cube_net(5, &[3]);
        let extra = net.settle_control(1_000).unwrap();
        assert_eq!(extra, 0, "already settled after initial settle");
    }

    #[test]
    fn cdg_acyclic_fault_free() {
        let cube = Hypercube::new(3);
        let algo = RouteC::new(cube.clone());
        let g = crate::conditions::build_cdg(&cube, &algo, &FaultSet::new());
        assert!(!g.has_cycle(), "{:?}", g.find_cycle());
    }

    #[test]
    fn conditions_fault_free() {
        let cube = Hypercube::new(3);
        let algo = RouteC::new(cube.clone());
        let rep = crate::conditions::check_conditions(&cube, &algo, &FaultSet::new(), None);
        // two-phase routing is minimal but NOT fully adaptive (phase order
        // fixes which dimension groups come first)
        assert_eq!(rep.cond2_ok, rep.cond2_pairs);
        assert_eq!(rep.cond3_ok, rep.cond3_pairs);
        assert!(rep.cond1_ok < rep.cond1_pairs);
    }

    #[test]
    fn totally_unsafe_detection() {
        assert!(!totally_unsafe(&[SafetyState::Safe, SafetyState::OrdUnsafe]));
        assert!(totally_unsafe(&[SafetyState::OrdUnsafe, SafetyState::Faulty]));
    }

    #[test]
    fn repair_reset_lowers_safety_states_again() {
        // two faulty neighbours push node 0 to OrdUnsafe; repairing them
        // must bring the whole cube back to Safe even though in-epoch
        // updates only ever join upward
        let cube = Hypercube::new(4);
        let topo = Arc::new(cube.clone());
        let mut net =
            Network::builder(topo.clone()).build(&RouteC::new(cube)).expect("valid config");
        net.inject_node_fault(NodeId(1));
        net.inject_node_fault(NodeId(2));
        net.settle_control(10_000).expect("settles");
        assert!(SafetyState::from_i64(net.controller(NodeId(0)).state_word()).is_unsafe());

        net.repair_node(NodeId(1));
        net.repair_node(NodeId(2));
        net.settle_control(10_000).expect("reset settles");
        for n in topo.nodes() {
            assert_eq!(
                SafetyState::from_i64(net.controller(n).state_word()),
                SafetyState::Safe,
                "node {n} back to safe"
            );
        }
        // and the repaired nodes carry traffic again
        net.set_measuring(true);
        for a in topo.nodes() {
            for b in topo.nodes() {
                if a != b {
                    net.send(a, b, 2).unwrap();
                }
            }
        }
        assert!(net.drain(300_000));
        assert_eq!(net.stats.delivered_msgs, 240);
        assert_eq!(net.stats.excess_hops, 0, "minimal routing restored");
    }

    #[test]
    fn partial_repair_keeps_remaining_unsafe_knowledge() {
        let cube = Hypercube::new(4);
        let topo = Arc::new(cube.clone());
        let mut net =
            Network::builder(topo.clone()).build(&RouteC::new(cube)).expect("valid config");
        net.inject_node_fault(NodeId(1));
        net.inject_node_fault(NodeId(2));
        net.settle_control(10_000).expect("settles");

        net.repair_node(NodeId(1));
        net.settle_control(10_000).expect("reset settles");
        // node 2 is still dead: its neighbours keep at least LinkFault
        let s0 = SafetyState::from_i64(net.controller(NodeId(0)).state_word());
        assert_eq!(s0, SafetyState::LinkFault, "one dead neighbour remains");
        assert!(!s0.is_unsafe(), "no longer ordinarily unsafe");
    }

    #[test]
    fn sustained_traffic_with_fault() {
        let (topo, mut net) = cube_net(4, &[9]);
        let mut tf = TrafficSource::new(Pattern::Uniform, 0.2, 4, 31);
        for _ in 0..1_500 {
            for (s, d, l) in tf.tick(topo.as_ref(), net.faults()) {
                net.send(s, d, l).unwrap();
            }
            net.step();
        }
        assert!(net.drain(50_000));
        assert!(!net.stats.deadlock);
        assert!(net.stats.delivered_msgs > 400);
    }
}
