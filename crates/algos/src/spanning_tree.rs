//! The spanning-tree strawman router of §2.1 as a pluggable algorithm.
//!
//! "Compute a spanning tree for the network graph every time new faults
//! occur. Route messages by only using edges of the tree." Trivially
//! fault-tolerant and deadlock-free (tree routing has no cyclic channel
//! dependencies), but it concentrates all traffic on n-1 links and almost
//! never uses minimal paths — experiment E11 quantifies both against the
//! adaptive algorithms, motivating the whole paper.
//!
//! Tree recomputation is modelled as the global reconfiguration the paper
//! says this scheme needs: every controller holds a copy of the current
//! tree and rebuilds it (deterministically, same BFS) when told of a fault.

use crate::common::max_hops;
use ftr_sim::flit::Header;
use ftr_sim::routing::{
    ControlMsg, Decision, NodeController, RouterView, RoutingAlgorithm, Verdict,
};
use ftr_topo::spanning::SpanningTree;
use ftr_topo::{FaultSet, NodeId, PortId, Topology, VcId};
use parking_lot::Mutex;
use std::sync::Arc;

/// Spanning-tree routing over any topology.
pub struct SpanningTreeRouting<T: Topology + Clone + 'static> {
    topo: T,
    /// Shared fault knowledge + tree (models the centralised
    /// reconfiguration step; rebuilt on every fault notification).
    shared: Arc<Mutex<SharedTree>>,
}

struct SharedTree {
    faults: FaultSet,
    tree: SpanningTree,
}

impl<T: Topology + Clone + 'static> SpanningTreeRouting<T> {
    /// Creates the algorithm, rooted at node 0.
    pub fn new(topo: T) -> Self {
        let tree = SpanningTree::build(&topo, &FaultSet::new(), NodeId(0));
        SpanningTreeRouting {
            topo,
            shared: Arc::new(Mutex::new(SharedTree { faults: FaultSet::new(), tree })),
        }
    }
}

impl<T: Topology + Clone + 'static> RoutingAlgorithm for SpanningTreeRouting<T> {
    fn name(&self) -> String {
        "spanning-tree".into()
    }

    fn num_vcs(&self) -> usize {
        1
    }

    fn controller(&self, _topo: &dyn Topology, node: NodeId) -> Box<dyn NodeController> {
        Box::new(TreeController {
            topo: self.topo.clone(),
            node,
            shared: Arc::clone(&self.shared),
            hop_limit: max_hops(self.topo.num_nodes()),
        })
    }
}

struct TreeController<T: Topology + Clone> {
    topo: T,
    node: NodeId,
    shared: Arc<Mutex<SharedTree>>,
    hop_limit: u32,
}

impl<T: Topology + Clone + 'static> NodeController for TreeController<T> {
    fn route(
        &mut self,
        view: &RouterView<'_>,
        h: &mut Header,
        _in_port: Option<PortId>,
        _in_vc: VcId,
    ) -> Decision {
        if h.hops > self.hop_limit {
            return Decision::new(Verdict::Unroutable, 1);
        }
        if view.node == h.dst {
            return Decision::new(Verdict::Deliver, 1);
        }
        let shared = self.shared.lock();
        let Some(next) = shared.tree.next_hop(view.node, h.dst) else {
            return Decision::new(Verdict::Unroutable, 1);
        };
        drop(shared);
        let Some(p) = self.topo.port_towards(view.node, next) else {
            return Decision::new(Verdict::Unroutable, 1);
        };
        if !view.link_alive[p.idx()] {
            // tree is stale; reconfiguration pending
            return Decision::new(Verdict::Wait, 1);
        }
        if view.out_free[p.idx()][0] {
            Decision::new(Verdict::Route(p, VcId(0)), 1)
        } else {
            Decision::new(Verdict::Wait, 1)
        }
    }

    fn relation(
        &mut self,
        view: &RouterView<'_>,
        h: &Header,
        _in_port: Option<PortId>,
        _in_vc: VcId,
    ) -> Vec<(PortId, VcId)> {
        let shared = self.shared.lock();
        let Some(next) = shared.tree.next_hop(view.node, h.dst) else {
            return Vec::new();
        };
        drop(shared);
        self.topo
            .port_towards(view.node, next)
            .filter(|p| view.link_alive[p.idx()])
            .map(|p| (p, VcId(0)))
            .into_iter()
            .collect()
    }

    fn on_fault(&mut self, _view: &RouterView<'_>, port: PortId) -> Vec<ControlMsg> {
        // global reconfiguration: record the fault and rebuild the tree
        let mut shared = self.shared.lock();
        shared.faults.fail_link(&self.topo, self.node, port);
        // pick the lowest alive root
        let root = self.topo.nodes().find(|&n| !shared.faults.node_faulty(n)).unwrap_or(NodeId(0));
        let faults = shared.faults.clone();
        shared.tree = SpanningTree::build(&self.topo, &faults, root);
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftr_sim::Network;
    use ftr_topo::{Mesh2D, EAST};

    #[test]
    fn all_pairs_delivered_but_dilated() {
        let mesh = Mesh2D::new(4, 4);
        let topo = Arc::new(mesh.clone());
        let algo = SpanningTreeRouting::new(mesh);
        let mut net = Network::builder(topo.clone()).build(&algo).expect("valid config");
        net.set_measuring(true);
        for a in topo.nodes() {
            for b in topo.nodes() {
                if a != b {
                    net.send(a, b, 2).unwrap();
                }
            }
        }
        assert!(net.drain(200_000));
        assert_eq!(net.stats.delivered_msgs, 240);
        assert!(!net.stats.deadlock);
        // tree routing is far from minimal: many excess hops
        assert!(net.stats.excess_hops > 0, "trees nearly never take minimal paths");
    }

    #[test]
    fn survives_fault_by_reconfiguration() {
        let mesh = Mesh2D::new(4, 4);
        let topo = Arc::new(mesh.clone());
        let algo = SpanningTreeRouting::new(mesh);
        let mut net = Network::builder(topo.clone()).build(&algo).expect("valid config");
        net.inject_link_fault(topo.node_at(0, 0), EAST);
        net.send(topo.node_at(0, 0), topo.node_at(3, 0), 2).unwrap();
        assert!(net.drain(10_000));
        assert_eq!(net.stats.delivered_msgs, 1);
    }

    #[test]
    fn cdg_acyclic() {
        let mesh = Mesh2D::new(4, 4);
        let algo = SpanningTreeRouting::new(mesh.clone());
        let g = crate::conditions::build_cdg(&mesh, &algo, &FaultSet::new());
        assert!(!g.has_cycle(), "tree routing cannot deadlock");
    }

    #[test]
    fn conditions_show_the_weakness() {
        let mesh = Mesh2D::new(4, 4);
        let algo = SpanningTreeRouting::new(mesh.clone());
        let rep = crate::conditions::check_conditions(&mesh, &algo, &FaultSet::new(), None);
        assert_eq!(rep.cond3_ok, rep.cond3_pairs, "always delivers");
        assert!(
            rep.cond2_ok < rep.cond2_pairs * 3 / 5,
            "shortest ways are mostly not taken: {rep:?}"
        );
        assert!(
            rep.cond1_ok <= rep.cond1_pairs / 2,
            "single tree path is far from fully adaptive: {rep:?}"
        );
    }
}
