//! Empirical checks of the paper's three fault-tolerant-routing conditions
//! (§2.1) and a bridge to the channel-dependency deadlock checker.
//!
//! * **Condition 1**: if all minimal paths between src and dst are intact,
//!   every such path must be selectable (full minimal adaptivity).
//! * **Condition 2**: if at least one minimal path survives, the algorithm
//!   must be able to use a minimal path.
//! * **Condition 3**: if any path survives, the message must be routable.
//!
//! The checks walk the algorithm's *routing relation* (every output it may
//! choose in some load state) as exposed by
//! [`ftr_sim::routing::NodeController::relation`], with fault knowledge
//! installed by running the control plane to quiescence first.

use ftr_sim::flit::{Header, MessageId};
use ftr_sim::routing::RoutingAlgorithm;
use ftr_sim::Network;
use ftr_topo::{cdg::ChannelDependencyGraph, graph, FaultSet, NodeId, PortId, Topology, VcId};
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Builds a network, installs the faults, and lets the algorithm's control
/// plane settle so controllers hold their propagated fault state.
fn prepared_network<T: Topology + Clone + 'static>(
    topo: &T,
    algo: &dyn RoutingAlgorithm,
    faults: &FaultSet,
) -> Network {
    let mut net = Network::builder(Arc::new(topo.clone())).build(algo).expect("valid config");
    net.apply_fault_set(faults);
    net.settle_control(1_000_000).expect("control plane must settle");
    net
}

/// Builds the channel dependency graph of `algo` on the faulty network.
pub fn build_cdg<T: Topology + Clone + 'static>(
    topo: &T,
    algo: &dyn RoutingAlgorithm,
    faults: &FaultSet,
) -> ChannelDependencyGraph {
    let net = RefCell::new(prepared_network(topo, algo, faults));
    let relation = |cur: NodeId, inch: Option<(PortId, VcId)>, dst: NodeId| {
        let h = Header::new(MessageId(0), cur, dst, 1);
        let (ip, iv) = match inch {
            Some((p, v)) => (Some(p), v),
            None => (None, VcId(0)),
        };
        net.borrow_mut().query_relation(cur, &h, ip, iv)
    };
    ChannelDependencyGraph::build(topo, faults, algo.num_vcs(), &relation)
}

/// Results of the conditions experiment: per condition, how many node
/// pairs satisfied the premise and how many of those the algorithm handled.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConditionsReport {
    /// Pairs where all minimal paths are intact.
    pub cond1_pairs: u64,
    /// … of which every minimal path is selectable.
    pub cond1_ok: u64,
    /// Pairs where at least one minimal path survives.
    pub cond2_pairs: u64,
    /// … of which the algorithm can route minimally.
    pub cond2_ok: u64,
    /// Pairs that are still connected at all.
    pub cond3_pairs: u64,
    /// … of which the algorithm can route.
    pub cond3_ok: u64,
}

impl ConditionsReport {
    /// Fraction helpers (1.0 when the premise never applied).
    pub fn ratio(ok: u64, pairs: u64) -> f64 {
        if pairs == 0 {
            1.0
        } else {
            ok as f64 / pairs as f64
        }
    }
}

/// State in the relation walk: where the head is and how it got there.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct WalkState {
    node: NodeId,
    inch: Option<(PortId, VcId)>,
}

/// Checks the three conditions over all ordered alive pairs (or the first
/// `sample` pairs when given, to bound runtime on large networks).
pub fn check_conditions<T: Topology + Clone + 'static>(
    topo: &T,
    algo: &dyn RoutingAlgorithm,
    faults: &FaultSet,
    sample: Option<usize>,
) -> ConditionsReport {
    let mut net = prepared_network(topo, algo, faults);
    let mut rep = ConditionsReport::default();
    let hop_limit = 4 * topo.num_nodes() as u32 + 16;

    let mut seen_pairs = 0usize;
    for dst in topo.nodes() {
        if faults.node_faulty(dst) {
            continue;
        }
        // memoised relation per (state) for this dst
        let mut memo: HashMap<WalkState, Vec<(PortId, VcId)>> = HashMap::new();
        let dist = graph::bfs_distances(topo, faults, dst);

        for src in topo.nodes() {
            if src == dst || faults.node_faulty(src) {
                continue;
            }
            if let Some(cap) = sample {
                if seen_pairs >= cap {
                    return rep;
                }
            }
            seen_pairs += 1;

            let connected = dist[src.idx()] != graph::UNREACHABLE;
            let min_d = topo.min_distance(src, dst);
            let minimal_survives = connected && dist[src.idx()] == min_d;
            let all_minimal = graph::all_minimal_paths_intact(topo, faults, src, dst);

            // forward BFS over the relation
            let mut best: HashMap<WalkState, u32> = HashMap::new();
            let mut q: VecDeque<(WalkState, u32)> = VecDeque::new();
            let start = WalkState { node: src, inch: None };
            best.insert(start, 0);
            q.push_back((start, 0));
            let mut reached_hops: Option<u32> = None;
            // condition-1 tracking: on minimal-progress states, are all
            // minimal directions offered?
            let mut cond1_full = true;

            while let Some((st, hops)) = q.pop_front() {
                if st.node == dst {
                    reached_hops = Some(reached_hops.map_or(hops, |r| r.min(hops)));
                    continue;
                }
                if hops >= hop_limit {
                    continue;
                }
                let outs = memo
                    .entry(st)
                    .or_insert_with(|| {
                        let h = Header::new(MessageId(0), src, dst, 1);
                        let (ip, iv) = match st.inch {
                            Some((p, v)) => (Some(p), v),
                            None => (None, VcId(0)),
                        };
                        net.query_relation(st.node, &h, ip, iv)
                    })
                    .clone();

                // minimal-progress analysis for condition 1: only on states
                // reached by a minimal prefix
                let on_min_prefix =
                    topo.min_distance(src, st.node) + topo.min_distance(st.node, dst) == min_d
                        && hops == topo.min_distance(src, st.node);
                if on_min_prefix && all_minimal {
                    for p in topo.ports() {
                        let Some(nb) = topo.neighbor(st.node, p) else { continue };
                        let progress = topo.min_distance(nb, dst) + 1
                            == topo.min_distance(st.node, dst)
                            && topo.min_distance(src, nb) == topo.min_distance(src, st.node) + 1;
                        if progress && !outs.iter().any(|(op, _)| *op == p) {
                            cond1_full = false;
                        }
                    }
                }

                for (p, v) in outs {
                    if !faults.link_usable(topo, st.node, p) {
                        continue;
                    }
                    let nb = topo.neighbor(st.node, p).expect("usable link");
                    let in_port = topo.port_towards(nb, st.node).expect("reverse");
                    let next = WalkState { node: nb, inch: Some((in_port, v)) };
                    let nh = hops + 1;
                    if best.get(&next).is_none_or(|&b| nh < b) {
                        best.insert(next, nh);
                        q.push_back((next, nh));
                    }
                }
            }

            if connected {
                rep.cond3_pairs += 1;
                if reached_hops.is_some() {
                    rep.cond3_ok += 1;
                }
            }
            if minimal_survives {
                rep.cond2_pairs += 1;
                if reached_hops == Some(min_d) {
                    rep.cond2_ok += 1;
                }
            }
            if all_minimal {
                rep.cond1_pairs += 1;
                if cond1_full && reached_hops == Some(min_d) {
                    rep.cond1_ok += 1;
                }
            }
        }
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dor::XyRouting;
    use ftr_topo::Mesh2D;

    #[test]
    fn xy_satisfies_cond2_and_3_fault_free_but_not_cond1() {
        let mesh = Mesh2D::new(4, 4);
        let algo = XyRouting::new(mesh.clone());
        let rep = check_conditions(&mesh, &algo, &FaultSet::new(), None);
        assert_eq!(rep.cond3_pairs, 240);
        assert_eq!(rep.cond3_ok, 240, "fault-free XY always delivers");
        assert_eq!(rep.cond2_ok, rep.cond2_pairs, "XY is minimal");
        // oblivious XY offers exactly one path — condition 1 fails for
        // every pair with more than one minimal path
        assert!(rep.cond1_ok < rep.cond1_pairs);
        // straight-line pairs (same row/col) have one minimal path: ok
        assert!(rep.cond1_ok >= 2 * 4 * 3 * 4 / 2, "{rep:?}");
    }

    #[test]
    fn xy_fails_cond3_under_faults() {
        let mesh = Mesh2D::new(4, 4);
        let algo = XyRouting::new(mesh.clone());
        let mut faults = FaultSet::new();
        faults.fail_link(&mesh, mesh.node_at(1, 0), ftr_topo::EAST);
        let rep = check_conditions(&mesh, &algo, &faults, None);
        // the network stays connected, but XY cannot route around the hole
        assert_eq!(rep.cond3_pairs, 240);
        assert!(rep.cond3_ok < rep.cond3_pairs);
    }

    #[test]
    fn sampling_caps_work() {
        let mesh = Mesh2D::new(4, 4);
        let algo = XyRouting::new(mesh.clone());
        let rep = check_conditions(&mesh, &algo, &FaultSet::new(), Some(10));
        assert!(rep.cond3_pairs <= 10);
    }
}
