//! Dimension-order (oblivious) routing baselines: XY on 2-D meshes and
//! e-cube on hypercubes.
//!
//! These are the classic deadlock-free oblivious routers the paper's
//! introduction contrasts with ("using oblivious routing the whole path
//! through the network is fixed"). They need one virtual channel, one rule
//! interpretation per message, and no fault state — the zero-cost end of
//! the fault-tolerance overhead scale.

use crate::common::max_hops;
use ftr_sim::flit::Header;
use ftr_sim::routing::{Decision, NodeController, RouterView, RoutingAlgorithm, Verdict};
use ftr_topo::{Hypercube, Mesh2D, NodeId, PortId, Topology, VcId, EAST, NORTH, SOUTH, WEST};

/// XY dimension-order routing on a 2-D mesh.
#[derive(Clone)]
pub struct XyRouting {
    mesh: Mesh2D,
}

impl XyRouting {
    /// Creates the algorithm for a mesh.
    pub fn new(mesh: Mesh2D) -> Self {
        XyRouting { mesh }
    }

    /// The single XY output for a (node, dst) pair, `None` at destination.
    pub fn next_port(mesh: &Mesh2D, node: NodeId, dst: NodeId) -> Option<PortId> {
        let (dx, dy) = mesh.offset(node, dst);
        if dx > 0 {
            Some(EAST)
        } else if dx < 0 {
            Some(WEST)
        } else if dy > 0 {
            Some(NORTH)
        } else if dy < 0 {
            Some(SOUTH)
        } else {
            None
        }
    }
}

impl RoutingAlgorithm for XyRouting {
    fn name(&self) -> String {
        "xy".into()
    }

    fn num_vcs(&self) -> usize {
        1
    }

    fn controller(&self, _topo: &dyn Topology, _node: NodeId) -> Box<dyn NodeController> {
        Box::new(XyController {
            mesh: self.mesh.clone(),
            hop_limit: max_hops(self.mesh.num_nodes()),
        })
    }
}

struct XyController {
    mesh: Mesh2D,
    hop_limit: u32,
}

impl NodeController for XyController {
    fn route(
        &mut self,
        view: &RouterView<'_>,
        h: &mut Header,
        _in_port: Option<PortId>,
        _in_vc: VcId,
    ) -> Decision {
        if h.hops > self.hop_limit {
            return Decision::new(Verdict::Unroutable, 1);
        }
        let Some(p) = XyRouting::next_port(&self.mesh, view.node, h.dst) else {
            return Decision::new(Verdict::Deliver, 1);
        };
        if !view.link_alive[p.idx()] {
            // oblivious: a fault on the fixed path is fatal
            return Decision::new(Verdict::Unroutable, 1);
        }
        if view.out_free[p.idx()][0] {
            Decision::new(Verdict::Route(p, VcId(0)), 1)
        } else {
            Decision::new(Verdict::Wait, 1)
        }
    }

    fn relation(
        &mut self,
        view: &RouterView<'_>,
        h: &Header,
        _in_port: Option<PortId>,
        _in_vc: VcId,
    ) -> Vec<(PortId, VcId)> {
        XyRouting::next_port(&self.mesh, view.node, h.dst)
            .map(|p| (p, VcId(0)))
            .into_iter()
            .collect()
    }
}

/// E-cube routing on a hypercube: resolve differing address bits in
/// ascending dimension order.
#[derive(Clone)]
pub struct EcubeRouting {
    cube: Hypercube,
}

impl EcubeRouting {
    /// Creates the algorithm for a hypercube.
    pub fn new(cube: Hypercube) -> Self {
        EcubeRouting { cube }
    }

    /// Lowest differing dimension, `None` at destination.
    pub fn next_port(cube: &Hypercube, node: NodeId, dst: NodeId) -> Option<PortId> {
        let diff = cube.diff(node, dst);
        (diff != 0).then(|| PortId(diff.trailing_zeros() as u8))
    }
}

impl RoutingAlgorithm for EcubeRouting {
    fn name(&self) -> String {
        "ecube".into()
    }

    fn num_vcs(&self) -> usize {
        1
    }

    fn controller(&self, _topo: &dyn Topology, _node: NodeId) -> Box<dyn NodeController> {
        Box::new(EcubeController {
            cube: self.cube.clone(),
            hop_limit: max_hops(self.cube.num_nodes()),
        })
    }
}

struct EcubeController {
    cube: Hypercube,
    hop_limit: u32,
}

impl NodeController for EcubeController {
    fn route(
        &mut self,
        view: &RouterView<'_>,
        h: &mut Header,
        _in_port: Option<PortId>,
        _in_vc: VcId,
    ) -> Decision {
        if h.hops > self.hop_limit {
            return Decision::new(Verdict::Unroutable, 1);
        }
        let Some(p) = EcubeRouting::next_port(&self.cube, view.node, h.dst) else {
            return Decision::new(Verdict::Deliver, 1);
        };
        if !view.link_alive[p.idx()] {
            return Decision::new(Verdict::Unroutable, 1);
        }
        if view.out_free[p.idx()][0] {
            Decision::new(Verdict::Route(p, VcId(0)), 1)
        } else {
            Decision::new(Verdict::Wait, 1)
        }
    }

    fn relation(
        &mut self,
        view: &RouterView<'_>,
        h: &Header,
        _in_port: Option<PortId>,
        _in_vc: VcId,
    ) -> Vec<(PortId, VcId)> {
        EcubeRouting::next_port(&self.cube, view.node, h.dst)
            .map(|p| (p, VcId(0)))
            .into_iter()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftr_sim::Network;
    use std::sync::Arc;

    #[test]
    fn xy_delivers_everything() {
        let mesh = Mesh2D::new(4, 4);
        let topo = Arc::new(mesh.clone());
        let mut net =
            Network::builder(topo.clone()).build(&XyRouting::new(mesh)).expect("valid config");
        for a in topo.nodes() {
            for b in topo.nodes() {
                if a != b {
                    net.send(a, b, 2).unwrap();
                }
            }
        }
        assert!(net.drain(50_000));
        assert_eq!(net.stats.delivered_msgs, 16 * 15);
        assert!(!net.stats.deadlock);
        // oblivious minimal: zero excess hops
        assert_eq!(net.stats.excess_hops, 0);
    }

    #[test]
    fn xy_fails_on_path_fault() {
        let mesh = Mesh2D::new(4, 1);
        let topo = Arc::new(mesh.clone());
        let mut net =
            Network::builder(topo.clone()).build(&XyRouting::new(mesh)).expect("valid config");
        net.inject_link_fault(topo.node_at(1, 0), EAST);
        net.send(topo.node_at(0, 0), topo.node_at(3, 0), 2).unwrap();
        net.run(50);
        assert_eq!(net.stats.unroutable_msgs, 1, "oblivious cannot avoid faults");
    }

    #[test]
    fn ecube_delivers_everything() {
        let cube = Hypercube::new(4);
        let topo = Arc::new(cube.clone());
        let mut net =
            Network::builder(topo.clone()).build(&EcubeRouting::new(cube)).expect("valid config");
        for a in topo.nodes() {
            for b in topo.nodes() {
                if a != b {
                    net.send(a, b, 2).unwrap();
                }
            }
        }
        assert!(net.drain(100_000));
        assert_eq!(net.stats.delivered_msgs, 16 * 15);
        assert_eq!(net.stats.excess_hops, 0);
    }

    #[test]
    fn next_port_geometry() {
        let mesh = Mesh2D::new(4, 4);
        assert_eq!(
            XyRouting::next_port(&mesh, mesh.node_at(0, 0), mesh.node_at(2, 2)),
            Some(EAST),
            "X first"
        );
        assert_eq!(
            XyRouting::next_port(&mesh, mesh.node_at(2, 0), mesh.node_at(2, 2)),
            Some(NORTH)
        );
        assert_eq!(XyRouting::next_port(&mesh, mesh.node_at(2, 2), mesh.node_at(2, 2)), None);

        let cube = Hypercube::new(4);
        assert_eq!(
            EcubeRouting::next_port(&cube, NodeId(0b0000), NodeId(0b1010)),
            Some(PortId(1)),
            "lowest differing dimension first"
        );
    }

    #[test]
    fn xy_cdg_is_acyclic() {
        use ftr_topo::{ChannelDependencyGraph, FaultSet};
        let mesh = Mesh2D::new(4, 4);
        let algo = XyRouting::new(mesh.clone());
        let g = crate::conditions::build_cdg(&mesh, &algo, &FaultSet::new());
        assert!(!g.has_cycle());
        let _ = algo;
        let _: Option<ChannelDependencyGraph> = None;
    }
}

/// Dimension-order routing on a general k-ary n-cube mesh (lowest
/// dimension first). Wrap-around variants are rejected at construction:
/// plain DOR deadlocks on rings, which is precisely why torus algorithms
/// need schemes like negative-hop.
#[derive(Clone)]
pub struct KAryDor {
    cube: ftr_topo::KAryNCube,
}

impl KAryDor {
    /// Creates DOR for a k-ary n-cube. Panics on wrap-around cubes.
    pub fn new(cube: ftr_topo::KAryNCube) -> Self {
        assert!(!cube.wraps(), "plain dimension-order routing deadlocks on wrap-around links");
        KAryDor { cube }
    }

    /// The single DOR output port, `None` at the destination.
    pub fn next_port(cube: &ftr_topo::KAryNCube, node: NodeId, dst: NodeId) -> Option<PortId> {
        let a = cube.coords(node);
        let b = cube.coords(dst);
        for d in 0..cube.dims() as usize {
            use std::cmp::Ordering::*;
            match a[d].cmp(&b[d]) {
                Less => return Some(PortId((2 * d) as u8)),
                Greater => return Some(PortId((2 * d + 1) as u8)),
                Equal => {}
            }
        }
        None
    }
}

impl RoutingAlgorithm for KAryDor {
    fn name(&self) -> String {
        format!("dor:{}", self.cube.name())
    }

    fn num_vcs(&self) -> usize {
        1
    }

    fn controller(&self, _topo: &dyn Topology, _node: NodeId) -> Box<dyn NodeController> {
        Box::new(KAryDorController {
            cube: self.cube.clone(),
            hop_limit: max_hops(self.cube.num_nodes()),
        })
    }
}

struct KAryDorController {
    cube: ftr_topo::KAryNCube,
    hop_limit: u32,
}

impl NodeController for KAryDorController {
    fn route(
        &mut self,
        view: &RouterView<'_>,
        h: &mut Header,
        _in_port: Option<PortId>,
        _in_vc: VcId,
    ) -> Decision {
        if h.hops > self.hop_limit {
            return Decision::new(Verdict::Unroutable, 1);
        }
        let Some(p) = KAryDor::next_port(&self.cube, view.node, h.dst) else {
            return Decision::new(Verdict::Deliver, 1);
        };
        if !view.link_alive[p.idx()] {
            return Decision::new(Verdict::Unroutable, 1);
        }
        if view.out_free[p.idx()][0] {
            Decision::new(Verdict::Route(p, VcId(0)), 1)
        } else {
            Decision::new(Verdict::Wait, 1)
        }
    }

    fn relation(
        &mut self,
        view: &RouterView<'_>,
        h: &Header,
        _in_port: Option<PortId>,
        _in_vc: VcId,
    ) -> Vec<(PortId, VcId)> {
        KAryDor::next_port(&self.cube, view.node, h.dst)
            .filter(|p| view.link_alive[p.idx()])
            .map(|p| (p, VcId(0)))
            .into_iter()
            .collect()
    }
}

#[cfg(test)]
mod kary_tests {
    use super::*;
    use ftr_sim::Network;
    use ftr_topo::KAryNCube;
    use std::sync::Arc;

    #[test]
    fn three_d_mesh_all_pairs() {
        let cube = KAryNCube::mesh(3, 3);
        let topo = Arc::new(cube.clone());
        let mut net =
            Network::builder(topo.clone()).build(&KAryDor::new(cube)).expect("valid config");
        net.set_measuring(true);
        for a in topo.nodes() {
            for b in topo.nodes() {
                if a != b {
                    net.send(a, b, 2).unwrap();
                }
            }
        }
        assert!(net.drain(200_000));
        assert_eq!(net.stats.delivered_msgs, 27 * 26);
        assert_eq!(net.stats.excess_hops, 0);
        assert!(!net.stats.deadlock);
    }

    #[test]
    fn kary_dor_cdg_acyclic() {
        let cube = KAryNCube::mesh(3, 3);
        let algo = KAryDor::new(cube.clone());
        let g = crate::conditions::build_cdg(&cube, &algo, &ftr_topo::FaultSet::new());
        assert!(!g.has_cycle());
    }

    #[test]
    #[should_panic(expected = "deadlocks")]
    fn wraparound_rejected() {
        KAryDor::new(KAryNCube::torus(4, 2));
    }

    #[test]
    fn next_port_dimension_order() {
        let cube = KAryNCube::mesh(4, 3);
        let a = cube.node_at(&[0, 2, 1]);
        let b = cube.node_at(&[3, 0, 1]);
        // dimension 0 first (+x), then dimension 1 (-y)
        assert_eq!(KAryDor::next_port(&cube, a, b), Some(PortId(0)));
        let mid = cube.node_at(&[3, 2, 1]);
        assert_eq!(KAryDor::next_port(&cube, mid, b), Some(PortId(3)));
        assert_eq!(KAryDor::next_port(&cube, b, b), None);
    }
}
