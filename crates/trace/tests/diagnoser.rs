//! The online diagnoser against live networks, both directions:
//!
//! - the naive fully-adaptive rule program — whose channel dependency
//!   graph `ftr-analyze` *statically* proves cyclic — must be caught
//!   *dynamically*: when the engine's watchdog declares deadlock, the
//!   diagnoser names an actual wait-for ring of messages and channels;
//! - healthy fault-tolerant runs (NAFTA under transient faults, repair
//!   and retries) must never be flagged, however congested — the knot
//!   test is structural, so congestion alone cannot fake a cycle.

use ftr_algos::Nafta;
use ftr_core::{configure, RuleRouter};
use ftr_obs::{RingSink, TeeSink, TraceSink};
use ftr_sim::{FaultPlan, Network, Pattern, RetryPolicy, TrafficSource};
use ftr_topo::Mesh2D;
use ftr_trace::{DiagnoserConfig, DiagnoserSink};
use std::sync::Arc;

/// The same program the static verifier condemns in
/// `ftr-analyze/tests/deadlock.rs`.
const ADAPTIVE_SRC: &str = ftr_algos::rules_src::NAIVE_ADAPTIVE;

fn diag_cfg() -> DiagnoserConfig {
    DiagnoserConfig { scan_period: 32, stale_window: 8, min_blocked: 96, starvation_window: 0 }
}

/// One naive-adaptive run; returns (watchdog fired, diagnoser sink,
/// ring of raw events).
fn adaptive_run(seed: u64) -> (bool, Arc<DiagnoserSink>, Arc<RingSink>) {
    let mesh = Mesh2D::new(4, 4);
    let cfg = configure("adaptive", ADAPTIVE_SRC).expect("fixture compiles");
    let algo = RuleRouter::new(cfg, mesh.clone(), 1);
    let diag = Arc::new(DiagnoserSink::new(diag_cfg()));
    let ring = Arc::new(RingSink::new(1 << 20));
    let tee = Arc::new(TeeSink::new(vec![ring.clone(), diag.clone()]));
    let mut net = Network::builder(Arc::new(mesh.clone()))
        .trace(tee)
        // message length == buffer depth: a blocked worm fits exactly in
        // one FIFO, so ring members' heads sit at FIFO fronts and keep
        // emitting RouteWait — the textbook deadlock shape
        .buffer_depth(4)
        .deadlock_threshold(300)
        .build(&algo)
        .expect("valid config");
    let mut tf = TrafficSource::new(Pattern::Uniform, 0.6, 4, seed);
    for _ in 0..1_500u64 {
        for (s, d, l) in tf.tick(&mesh, net.faults()) {
            net.send(s, d, l).unwrap();
        }
        net.step();
        if net.stats.deadlock {
            break;
        }
    }
    if !net.stats.deadlock {
        net.drain(20_000);
    }
    // give the diagnoser a full blocked window past the freeze point
    if net.stats.deadlock {
        for _ in 0..300 {
            net.step();
        }
    }
    (net.stats.deadlock, diag, ring)
}

#[test]
fn diagnoser_flags_the_statically_proven_adaptive_deadlock() {
    // static half: the verifier proves the CDG cyclic on the same 4x4
    // mesh configuration the dynamic run uses
    let cfg = configure("adaptive", ADAPTIVE_SRC).expect("fixture compiles");
    let report = ftr_analyze::verify_mesh(
        "adaptive",
        &cfg.compiled,
        4,
        4,
        ftr_analyze::MeshVcMode::SingleVc,
        0,
        16,
    );
    assert!(!report.verified(), "the static verifier must condemn this program");

    // dynamic half: find seeds where the engine actually deadlocks, and
    // demand the diagnoser names a wait-for ring for at least one; a
    // witness on a NON-deadlocked run would be a false positive
    let mut deadlocked = 0u32;
    let mut witnessed = 0u32;
    for seed in 0..10u64 {
        let (watchdog, diag, ring) = adaptive_run(seed);
        let witness = diag.deadlock();
        if let Some(w) = &witness {
            assert!(watchdog, "seed {seed}: witness without engine deadlock\n{w:?}");
            // the ring must be a closed wait-for cycle of >= 2 messages
            assert!(w.ring.len() >= 2, "seed {seed}: degenerate ring {w:?}");
            assert!(w.knot_size >= w.ring.len());
            for (i, e) in w.ring.iter().enumerate() {
                assert_eq!(
                    e.holder,
                    w.ring[(i + 1) % w.ring.len()].msg,
                    "seed {seed}: ring does not close: {w:?}"
                );
                assert_ne!(e.msg, e.holder, "seed {seed}: self-wait in ring");
            }
            // offline replay of the same trace reproduces the verdict —
            // the diagnoser is a pure function of the event stream
            let replay = DiagnoserSink::new(diag_cfg());
            for ev in ring.events() {
                replay.record(&ev);
            }
            replay.scan_now();
            let again = replay.deadlock().expect("replay finds the deadlock too");
            assert_eq!(again.ring.len(), w.ring.len(), "seed {seed}: replay diverged");
            witnessed += 1;
        }
        if watchdog {
            deadlocked += 1;
        }
    }
    assert!(deadlocked > 0, "no seed deadlocked the naive adaptive program — load too low?");
    assert!(
        witnessed > 0,
        "{deadlocked} runs deadlocked but the diagnoser never produced a witness"
    );
}

#[test]
fn diagnoser_stays_silent_on_healthy_fault_tolerant_runs() {
    // campaign-shaped runs: transient link faults, repair, retries, at a
    // load that produces plenty of congestion stalls — zero tolerance
    // for a deadlock verdict on an algorithm that provably has none
    for seed in [3u64, 17, 1842] {
        let mesh = Mesh2D::new(6, 6);
        let plan = FaultPlan::random_transient_links(&mesh, 8, 200..900, 150, seed);
        let diag = Arc::new(DiagnoserSink::new(DiagnoserConfig {
            // starvation reporting on, with a window comfortably above a
            // fault-window stall + retry backoff
            starvation_window: 8_192,
            ..diag_cfg()
        }));
        let mut net = Network::builder(Arc::new(mesh.clone()))
            .trace(diag.clone())
            .fault_plan(plan)
            .retry(RetryPolicy { max_attempts: 8, backoff_cycles: 64 })
            .build(&Nafta::new(mesh.clone()))
            .expect("valid config");
        let mut tf = TrafficSource::new(Pattern::Uniform, 0.2, 16, seed ^ 0x7777);
        for _ in 0..1_500u64 {
            for (s, d, l) in tf.tick(&mesh, net.faults()) {
                let _ = net.send(s, d, l);
            }
            net.step();
        }
        assert!(net.drain(60_000), "seed {seed}: healthy run must drain");
        diag.scan_now();
        assert!(!net.stats.deadlock, "seed {seed}: engine saw no deadlock");
        assert!(diag.deadlock().is_none(), "seed {seed}: false positive: {:?}", diag.deadlock());
        assert!(
            diag.starved().is_empty(),
            "seed {seed}: spurious starvation: {:?}",
            diag.starved()
        );
        assert!(diag.scans() > 0, "seed {seed}: the diagnoser actually ran");
    }
}
