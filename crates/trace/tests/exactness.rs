//! Cross-validation of the offline reconstruction against the engine:
//! on a deterministic traced run, the journey book's counts, latency
//! tally, hop tally and step tally must equal `SimStats` *exactly* —
//! field for field, not approximately. Any divergence means either the
//! trace stream or the reconstruction rules drifted from the engine's
//! accounting, which is precisely what this test is here to catch.

use ftr_algos::Nafta;
use ftr_obs::RingSink;
use ftr_sim::{FaultPlan, Network, Pattern, RetryPolicy, TrafficSource};
use ftr_topo::Mesh2D;
use ftr_trace::{JourneyBook, Outcome, TraceReport};
use std::sync::Arc;

/// A 6x6 NAFTA run with transient link faults, repairs and source
/// retransmission — every dynamic-lifecycle path the tracer must get
/// right (kills, retries, abandonment, misrouting).
fn faulty_traced_run(seed: u64) -> (Network, Arc<RingSink>) {
    let mesh = Mesh2D::new(6, 6);
    let plan = FaultPlan::random_transient_links(&mesh, 10, 200..900, 150, seed);
    let sink = Arc::new(RingSink::new(1 << 22));
    let mut net = Network::builder(Arc::new(mesh.clone()))
        .trace(sink.clone())
        .fault_plan(plan)
        .retry(RetryPolicy { max_attempts: 2, backoff_cycles: 64 })
        .build(&Nafta::new(mesh.clone()))
        .expect("valid config");
    // measure from the first injection: the trace sees every message, so
    // the stats must too for the tallies to be comparable
    net.set_measuring(true);
    let mut tf = TrafficSource::new(Pattern::Uniform, 0.2, 16, seed ^ 0xabcd);
    for _ in 0..1_200u64 {
        for (s, d, l) in tf.tick(&mesh, net.faults()) {
            let _ = net.send(s, d, l); // endpoint faults reject, not panic
        }
        net.step();
    }
    assert!(net.drain(60_000), "run must drain");
    (net, sink)
}

#[test]
fn reconstruction_equals_engine_stats_exactly() {
    let (net, sink) = faulty_traced_run(977);
    assert_eq!(sink.dropped(), 0, "ring must hold the full trace");

    let mut book = JourneyBook::new();
    let events = sink.events();
    book.fold_all(&events);

    assert_eq!(book.orphans(), 0, "complete trace has no orphans");
    assert!(book.anomalies().is_empty(), "anomalies: {:?}", book.anomalies());

    let s = book.summary();
    let st = &net.stats;
    // the run must actually exercise the interesting paths
    assert!(st.killed_msgs + st.unroutable_msgs > 0, "faults had casualties");
    assert!(st.retried_msgs > 0, "retries happened");

    assert_eq!(s.injected, st.injected_msgs, "injected");
    assert_eq!(s.delivered, st.delivered_msgs, "delivered");
    assert_eq!(s.killed, st.killed_msgs, "killed (final, incl. abandoned)");
    assert_eq!(s.unroutable, st.unroutable_msgs, "unroutable (final)");
    assert_eq!(s.retried, st.retried_msgs, "retry events");
    assert_eq!(s.rejected_sends, st.rejected_sends, "rejected sends");
    assert_eq!(s.in_flight, 0, "drained run leaves nothing open");

    // exact tally equality: count, sum, min, max
    assert_eq!(
        (s.latency.count, s.latency.sum, s.latency.min, s.latency.max),
        (st.latency.count, st.latency.sum, st.latency.min, st.latency.max),
        "latency tally"
    );
    assert_eq!(
        (s.hops.count, s.hops.sum, s.hops.min, s.hops.max),
        (st.hops.count, st.hops.sum, st.hops.min, st.hops.max),
        "hops tally"
    );
    assert_eq!(
        (s.steps.count, s.steps.sum, s.steps.min, s.steps.max),
        (
            st.decision_steps.count,
            st.decision_steps.sum,
            st.decision_steps.min,
            st.decision_steps.max
        ),
        "decision-steps tally"
    );

    // attribution is a true partition of total latency, in aggregate and
    // per journey
    let a = &s.attribution;
    assert_eq!(a.total, st.latency.sum, "attributed cycles == total latency");
    assert_eq!(
        a.src_queue + a.retry_backoff + a.blocked + a.transit,
        a.total,
        "buckets partition the total"
    );
    for j in book.journeys().values() {
        if let Some(at) = j.attribution() {
            assert_eq!(
                at.src_queue + at.retry_backoff + at.blocked + at.transit,
                at.total,
                "msg {}: per-journey partition",
                j.msg
            );
            assert!(
                at.transit >= j.hops().unwrap_or(0),
                "msg {}: transit covers at least one cycle per hop",
                j.msg
            );
        }
    }

    // faults and repairs from the plan all show up
    assert_eq!(book.fault_events(), 10);
    assert_eq!(book.repair_events(), 10);
}

#[test]
fn retried_journeys_carry_their_attempt_history() {
    let (net, sink) = faulty_traced_run(977);
    assert_eq!(sink.dropped(), 0);
    let mut book = JourneyBook::new();
    book.fold_all(&sink.events());
    assert!(net.stats.retried_msgs > 0);

    let mut retried_then_delivered = 0u64;
    let mut backoff_total = 0u64;
    for j in book.journeys().values() {
        if j.retries() == 0 {
            continue;
        }
        // attempt numbers are consecutive from 1
        for (i, a) in j.attempts.iter().enumerate() {
            assert_eq!(a.number as usize, i + 1, "msg {}: attempt numbering", j.msg);
        }
        if let (Outcome::Delivered { .. }, Some(at)) = (j.outcome, j.attribution()) {
            retried_then_delivered += 1;
            // a retry waits out the configured backoff, so the bucket
            // grows by >= backoff_cycles per re-injection
            assert!(
                at.retry_backoff >= 64 * j.retries() as u64,
                "msg {}: backoff {} < 64 * {}",
                j.msg,
                at.retry_backoff,
                j.retries()
            );
            backoff_total += at.retry_backoff;
        }
    }
    assert!(retried_then_delivered > 0, "some retried messages must deliver");
    assert!(backoff_total > 0);
}

#[test]
fn report_over_live_trace_validates_and_matches_stats() {
    let (net, sink) = faulty_traced_run(31);
    let mut book = JourneyBook::new();
    book.fold_all(&sink.events());
    let report = TraceReport::build(&book, None, 8);

    let payload = report.to_json();
    ftr_obs::json::validate(&payload).expect("report JSON is valid");
    let v = ftr_obs::json::parse(&payload).expect("report JSON parses");
    let field = |k: &str| v.get(k).and_then(|x| x.as_u64()).unwrap_or_else(|| panic!("field {k}"));
    assert_eq!(field("injected"), net.stats.injected_msgs);
    assert_eq!(field("delivered"), net.stats.delivered_msgs);
    assert_eq!(field("killed"), net.stats.killed_msgs);
    assert_eq!(field("retried"), net.stats.retried_msgs);
    let lat = v.get("latency").expect("latency object");
    assert_eq!(lat.get("sum").and_then(|x| x.as_u64()), Some(net.stats.latency.sum));

    // channel utilization is physically bounded by the wall clock
    let (first, last) = book.span().expect("non-empty trace");
    for (key, ch) in book.channels() {
        assert!(ch.busy_cycles <= last - first, "channel {key:?} busy longer than the run");
    }
    let text = report.human_summary();
    assert!(text.contains("deadlock: none suspected"), "{text}");
}
