//! Online stall/deadlock diagnosis over the live event stream.
//!
//! [`DiagnoserSink`] implements `TraceSink`, so it attaches to a running
//! network exactly like any other sink (compose with `TeeSink` to keep a
//! JSONL capture at the same time) and needs nothing from the engine's
//! internals. From the event stream it maintains:
//!
//! - a **channel-owner map** — `VcAcquire` names the worm holding each
//!   output virtual channel (`VcRelease` is deliberately *not* treated as
//!   a transfer of ownership: a released channel may still be draining
//!   the releaser's flits downstream, so ownership only changes on the
//!   next acquire or when the owner terminates);
//! - a **want map** — `VcStall` (granted channel unavailable) and
//!   `RouteWait` (algorithm withheld a grant; `wants` lists every channel
//!   it would accept) give, per blocked head, the exact set of channels
//!   that would unblock it.
//!
//! Together these form the classic wait-for graph. Every `scan_period`
//! cycles the diagnoser prunes it to its knot: messages that have been
//! blocked at least `min_blocked` cycles, are *still* blocked (stalled
//! within `stale_window` of now), want at least one channel, and whose
//! every wanted channel is owned by another member of the set. A
//! non-empty fixpoint necessarily contains a cycle, which is extracted
//! and reported as a [`DeadlockWitness`] naming the ring of messages,
//! the node/channel each is parked at, and the holder it waits on. On a
//! wait-for graph that is a DAG (any deadlock-free configuration) the
//! fixpoint is empty, so the diagnoser cannot produce false positives
//! from topology — only from a violated trace contract.
//!
//! Starvation is orthogonal: a message that has made no progress (no
//! decision, no channel acquire) for `starvation_window` cycles is
//! reported once, whether or not it participates in a knot.

use ftr_obs::{EventKind, TraceEvent, TraceSink};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};

/// Channel identity `(node, out_port, out_vc)` — same key as the
/// journey book's channel table.
pub type ChannelKey = (u32, u8, u8);

/// Tuning knobs for the online diagnoser.
#[derive(Clone, Copy, Debug)]
pub struct DiagnoserConfig {
    /// Cycles between wait-for-graph scans.
    pub scan_period: u64,
    /// A blocked message is *current* if it stalled within this many
    /// cycles of the scan (stall events fire once per blocked cycle, so
    /// a small window suffices; it only needs to absorb event-ordering
    /// slack within a cycle).
    pub stale_window: u64,
    /// Minimum consecutive blocked cycles before a message can join a
    /// deadlock candidate set — transient congestion must not qualify.
    pub min_blocked: u64,
    /// Cycles without progress before a message is reported starved
    /// (0 disables starvation reporting).
    pub starvation_window: u64,
}

impl Default for DiagnoserConfig {
    fn default() -> Self {
        DiagnoserConfig {
            scan_period: 64,
            stale_window: 8,
            min_blocked: 128,
            starvation_window: 4_096,
        }
    }
}

/// One edge of a deadlock ring: `msg`, parked at `node`, wants channel
/// `(node, port, vc)`, which is held by `holder`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitEdge {
    /// The blocked message.
    pub msg: u64,
    /// Node its head is parked at.
    pub node: u32,
    /// Wanted output port.
    pub port: u8,
    /// Wanted output virtual channel.
    pub vc: u8,
    /// Message currently owning that channel.
    pub holder: u64,
}

/// A closed cycle in the wait-for graph: `ring[i].holder ==
/// ring[(i+1) % len].msg` for every `i`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeadlockWitness {
    /// Cycle the scan detected the knot.
    pub cycle: u64,
    /// Size of the whole knot (the ring below may be a subset).
    pub knot_size: usize,
    /// The witness ring, in wait-for order.
    pub ring: Vec<WaitEdge>,
}

/// A message that stopped making progress without (necessarily) being
/// part of a deadlock knot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Starvation {
    /// The starved message.
    pub msg: u64,
    /// Node it was last seen blocked at (its source if never blocked).
    pub node: u32,
    /// Cycle of its last observed progress.
    pub since: u64,
    /// Cycle the scan flagged it.
    pub detected: u64,
}

/// Per-message live state.
#[derive(Debug)]
struct MsgState {
    /// Last cycle with a decision or channel acquire (injection counts).
    last_progress: u64,
    /// Start of the current uninterrupted blocked streak.
    blocked_since: Option<u64>,
    /// Most recent stall: (cycle, node, wanted channels).
    last_wait: Option<(u64, u32, Vec<ChannelKey>)>,
    /// Every channel this message acquired and may still own.
    owned: Vec<ChannelKey>,
}

#[derive(Default)]
struct DiagState {
    cycle: u64,
    next_scan: u64,
    /// Channel → last acquirer (ownership in the wait-for sense).
    owner: HashMap<ChannelKey, u64>,
    msgs: BTreeMap<u64, MsgState>,
    deadlock: Option<DeadlockWitness>,
    starved: Vec<Starvation>,
    scans: u64,
}

/// Online deadlock/starvation diagnoser; see the module docs.
pub struct DiagnoserSink {
    cfg: DiagnoserConfig,
    state: Mutex<DiagState>,
}

impl Default for DiagnoserSink {
    fn default() -> Self {
        DiagnoserSink::new(DiagnoserConfig::default())
    }
}

impl DiagnoserSink {
    /// A diagnoser with the given configuration.
    pub fn new(cfg: DiagnoserConfig) -> Self {
        DiagnoserSink { cfg, state: Mutex::new(DiagState::default()) }
    }

    /// The configuration in force.
    pub fn config(&self) -> DiagnoserConfig {
        self.cfg
    }

    /// The first deadlock witness found, if any.
    pub fn deadlock(&self) -> Option<DeadlockWitness> {
        self.state.lock().deadlock.clone()
    }

    /// Every starvation reported so far (each message at most once per
    /// attempt).
    pub fn starved(&self) -> Vec<Starvation> {
        self.state.lock().starved.clone()
    }

    /// Number of wait-for-graph scans performed.
    pub fn scans(&self) -> u64 {
        self.state.lock().scans
    }

    /// Forces a scan at the current cycle — call after the trace ends,
    /// so a knot formed less than `scan_period` cycles before the end is
    /// still found.
    pub fn scan_now(&self) {
        let mut st = self.state.lock();
        let cycle = st.cycle;
        self.scan(&mut st, cycle);
    }

    fn ingest(&self, ev: &TraceEvent) {
        let mut st = self.state.lock();
        st.cycle = st.cycle.max(ev.cycle);
        let cycle = ev.cycle;
        match &ev.kind {
            EventKind::Inject { msg, src, .. } => {
                st.msgs.insert(
                    *msg,
                    MsgState {
                        last_progress: cycle,
                        blocked_since: None,
                        last_wait: Some((cycle, src.0, Vec::new())),
                        owned: Vec::new(),
                    },
                );
            }
            EventKind::Retry { msg, .. } => {
                if let Some(ms) = st.msgs.get_mut(msg) {
                    ms.last_progress = cycle;
                    ms.blocked_since = None;
                } else {
                    st.msgs.insert(
                        *msg,
                        MsgState {
                            last_progress: cycle,
                            blocked_since: None,
                            last_wait: None,
                            owned: Vec::new(),
                        },
                    );
                }
            }
            EventKind::RouteDecision { msg, .. } => {
                if let Some(ms) = st.msgs.get_mut(msg) {
                    ms.last_progress = cycle;
                    ms.blocked_since = None;
                }
            }
            EventKind::VcStall { node, msg, port, vc } => {
                self.note_blocked(&mut st, *msg, cycle, node.0, vec![(node.0, port.0, vc.0)]);
            }
            EventKind::RouteWait { node, msg, wants } => {
                let wants: Vec<ChannelKey> =
                    wants.iter().map(|(p, v)| (node.0, p.0, v.0)).collect();
                self.note_blocked(&mut st, *msg, cycle, node.0, wants);
            }
            EventKind::VcAcquire { node, msg, port, vc } => {
                let key = (node.0, port.0, vc.0);
                st.owner.insert(key, *msg);
                if let Some(ms) = st.msgs.get_mut(msg) {
                    ms.last_progress = cycle;
                    ms.blocked_since = None;
                    ms.last_wait = None;
                    ms.owned.push(key);
                }
            }
            // ownership survives release until re-acquired or the owner
            // terminates: the channel may still drain the old worm's flits
            EventKind::VcRelease { .. } => {}
            EventKind::Deliver { msg, .. }
            | EventKind::Kill { msg }
            | EventKind::Unroutable { msg } => {
                if let Some(ms) = st.msgs.remove(msg) {
                    for key in ms.owned {
                        if st.owner.get(&key) == Some(msg) {
                            st.owner.remove(&key);
                        }
                    }
                }
            }
            _ => {}
        }
        if st.cycle >= st.next_scan {
            st.next_scan = st.cycle + self.cfg.scan_period;
            let cycle = st.cycle;
            self.scan(&mut st, cycle);
        }
    }

    fn note_blocked(
        &self,
        st: &mut DiagState,
        msg: u64,
        cycle: u64,
        node: u32,
        wants: Vec<ChannelKey>,
    ) {
        let Some(ms) = st.msgs.get_mut(&msg) else { return };
        // stall events fire once per blocked cycle; a gap wider than the
        // freshness window means the streak was interrupted
        let continued = matches!(&ms.last_wait,
            Some((prev, ..)) if cycle.saturating_sub(*prev) <= self.cfg.stale_window);
        if !continued || ms.blocked_since.is_none() {
            ms.blocked_since = Some(cycle);
        }
        ms.last_wait = Some((cycle, node, wants));
    }

    /// Prunes the wait-for graph to its knot and extracts a cycle.
    fn scan(&self, st: &mut DiagState, cycle: u64) {
        st.scans += 1;
        if self.cfg.starvation_window > 0 {
            let mut found: Vec<Starvation> = Vec::new();
            for (&msg, ms) in &st.msgs {
                if cycle.saturating_sub(ms.last_progress) >= self.cfg.starvation_window
                    && !st.starved.iter().any(|s| s.msg == msg && s.since == ms.last_progress)
                {
                    let node = ms.last_wait.as_ref().map(|(_, n, _)| *n).unwrap_or(0);
                    found.push(Starvation { msg, node, since: ms.last_progress, detected: cycle });
                }
            }
            st.starved.extend(found);
        }

        if st.deadlock.is_some() {
            return; // first witness is kept; the run is already condemned
        }
        // candidates: currently blocked (fresh stall), long enough, with a
        // non-empty want set
        let mut members: BTreeMap<u64, (u32, Vec<ChannelKey>)> = BTreeMap::new();
        for (&msg, ms) in &st.msgs {
            let Some(since) = ms.blocked_since else { continue };
            let Some((last, node, wants)) = &ms.last_wait else { continue };
            if cycle.saturating_sub(*last) <= self.cfg.stale_window
                && cycle.saturating_sub(since) >= self.cfg.min_blocked
                && !wants.is_empty()
            {
                members.insert(msg, (*node, wants.clone()));
            }
        }
        // knot fixpoint: drop anyone with an escape channel (a want that
        // is unowned, or owned outside the set)
        loop {
            let escapees: Vec<u64> = members
                .iter()
                .filter(|(_, (_, wants))| {
                    !wants.iter().all(|k| st.owner.get(k).is_some_and(|h| members.contains_key(h)))
                })
                .map(|(&m, _)| m)
                .collect();
            if escapees.is_empty() {
                break;
            }
            for m in escapees {
                members.remove(&m);
            }
        }
        if members.is_empty() {
            return;
        }
        // a non-empty fixpoint has every member waiting on a member, so
        // walking first-want edges must revisit a node: extract the ring
        let knot_size = members.len();
        let start = *members.keys().next().expect("non-empty");
        let mut path: Vec<WaitEdge> = Vec::new();
        let mut seen_at: HashMap<u64, usize> = HashMap::new();
        let mut cur = start;
        let ring = loop {
            if let Some(&i) = seen_at.get(&cur) {
                break path[i..].to_vec();
            }
            seen_at.insert(cur, path.len());
            let (node, wants) = &members[&cur];
            let (key, holder) = wants
                .iter()
                .find_map(|k| st.owner.get(k).map(|&h| (*k, h)))
                .expect("knot member has an owned want");
            path.push(WaitEdge { msg: cur, node: *node, port: key.1, vc: key.2, holder });
            cur = holder;
        };
        st.deadlock = Some(DeadlockWitness { cycle, knot_size, ring });
    }
}

impl TraceSink for DiagnoserSink {
    fn record(&self, ev: &TraceEvent) {
        self.ingest(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftr_topo::{NodeId, PortId, VcId};

    fn ev(cycle: u64, kind: EventKind) -> TraceEvent {
        TraceEvent { cycle, kind }
    }

    fn inject(d: &DiagnoserSink, cycle: u64, msg: u64, src: u32) {
        d.record(&ev(
            cycle,
            EventKind::Inject { msg, src: NodeId(src), dst: NodeId(99), len_flits: 4 },
        ));
    }

    fn acquire(d: &DiagnoserSink, cycle: u64, msg: u64, node: u32, port: u8) {
        d.record(&ev(
            cycle,
            EventKind::VcAcquire { node: NodeId(node), msg, port: PortId(port), vc: VcId(0) },
        ));
    }

    fn wait(d: &DiagnoserSink, cycle: u64, msg: u64, node: u32, port: u8) {
        d.record(&ev(
            cycle,
            EventKind::RouteWait { node: NodeId(node), msg, wants: vec![(PortId(port), VcId(0))] },
        ));
    }

    fn cfg() -> DiagnoserConfig {
        DiagnoserConfig { scan_period: 16, stale_window: 4, min_blocked: 32, starvation_window: 0 }
    }

    /// Two worms each owning the channel the other wants: the minimal
    /// wait-for cycle must be witnessed.
    #[test]
    fn two_cycle_deadlock_is_witnessed() {
        let d = DiagnoserSink::new(cfg());
        inject(&d, 0, 1, 0);
        inject(&d, 0, 2, 1);
        acquire(&d, 1, 1, 0, 0); // msg 1 holds (0,0,0)
        acquire(&d, 1, 2, 1, 0); // msg 2 holds (1,0,0)
        for c in 2..80 {
            wait(&d, c, 1, 1, 0); // msg 1 at node 1 wants (1,0,0)
            wait(&d, c, 2, 0, 0); // msg 2 at node 0 wants (0,0,0)
        }
        let w = d.deadlock().expect("deadlock must be flagged");
        assert_eq!(w.knot_size, 2);
        assert_eq!(w.ring.len(), 2);
        let msgs: Vec<u64> = w.ring.iter().map(|e| e.msg).collect();
        assert!(msgs.contains(&1) && msgs.contains(&2));
        for (i, e) in w.ring.iter().enumerate() {
            assert_eq!(e.holder, w.ring[(i + 1) % w.ring.len()].msg, "ring closes");
        }
    }

    /// A want whose owner eventually releases and moves on is congestion,
    /// not deadlock: the escapee empties the knot.
    #[test]
    fn progressing_chain_is_not_flagged() {
        let d = DiagnoserSink::new(cfg());
        inject(&d, 0, 1, 0);
        inject(&d, 0, 2, 1);
        acquire(&d, 1, 2, 1, 0); // msg 2 holds what msg 1 wants…
        for c in 2..60 {
            wait(&d, c, 1, 1, 0);
        }
        // …but msg 2 itself keeps making progress (decisions), so it is
        // never a member and msg 1 always has its escape through it
        for c in (2..60).step_by(8) {
            d.record(&ev(
                c,
                EventKind::RouteDecision {
                    node: NodeId(2),
                    msg: 2,
                    in_port: None,
                    in_vc: VcId(0),
                    outcome: ftr_obs::RouteOutcome::Wait,
                    steps: 1,
                    misrouted: false,
                },
            ));
        }
        assert!(d.deadlock().is_none(), "chain behind a moving worm is not deadlock");
    }

    /// Termination of the holder breaks the would-be knot.
    #[test]
    fn delivered_holder_clears_ownership() {
        let d = DiagnoserSink::new(cfg());
        inject(&d, 0, 1, 0);
        inject(&d, 0, 2, 1);
        acquire(&d, 1, 1, 0, 0);
        acquire(&d, 1, 2, 1, 0);
        d.record(&ev(3, EventKind::Deliver { node: NodeId(9), msg: 2 }));
        for c in 4..90 {
            wait(&d, c, 1, 1, 0); // wants msg 2's old channel — now unowned
        }
        assert!(d.deadlock().is_none());
    }

    /// A stale blocked record (message stopped emitting stalls) cannot
    /// anchor a witness.
    #[test]
    fn stale_waits_do_not_count() {
        let d = DiagnoserSink::new(cfg());
        inject(&d, 0, 1, 0);
        inject(&d, 0, 2, 1);
        acquire(&d, 1, 1, 0, 0);
        acquire(&d, 1, 2, 1, 0);
        for c in 2..40 {
            wait(&d, c, 1, 1, 0);
            wait(&d, c, 2, 0, 0);
        }
        // both fall silent; advance the clock with unrelated events
        for c in 40..200 {
            d.record(&ev(c, EventKind::ControlSettled { cycles: 1 }));
        }
        d.scan_now();
        assert!(d.deadlock().is_none(), "silence is staleness, not deadlock");
    }

    #[test]
    fn starvation_is_reported_once_per_streak() {
        let d = DiagnoserSink::new(DiagnoserConfig {
            scan_period: 16,
            stale_window: 4,
            min_blocked: 1 << 40, // deadlock path effectively off
            starvation_window: 50,
        });
        inject(&d, 0, 1, 3);
        for c in 1..200 {
            wait(&d, c, 1, 3, 0);
        }
        let starved = d.starved();
        assert_eq!(starved.len(), 1, "{starved:?}");
        assert_eq!(starved[0].msg, 1);
        assert_eq!(starved[0].node, 3);
        assert_eq!(starved[0].since, 0);
    }
}
