//! # ftr-trace — message-journey tracing and stall/deadlock diagnosis
//!
//! The diagnosis layer over `ftr-obs` trace streams, in two halves:
//!
//! - **Offline** ([`journey`], [`report`]): [`JourneyBook`] folds a
//!   cycle-ordered event stream into per-message [`Journey`]s — every
//!   attempt, hop, stall and channel hold — with *exact* latency
//!   attribution: source queueing, blocked cycles, retry backoff and
//!   transit partition each delivered message's latency with no
//!   remainder. Aggregates (latency/hops/steps tallies, per-channel
//!   utilization and stall heatmaps) land in a [`TraceReport`] rendered
//!   as validated JSON plus a human summary. The reconstruction mirrors
//!   the engine's accounting rules exactly; on a deterministic run the
//!   report's counts and latency tally equal `SimStats` field for field
//!   (asserted in `tests/exactness.rs`).
//! - **Online** ([`diagnose`]): [`DiagnoserSink`] implements
//!   `ftr_obs::TraceSink`, so it attaches to a live network (compose
//!   with `TeeSink` to also keep a JSONL capture) and incrementally
//!   maintains the VC wait-for graph from `VcAcquire`/`VcStall`/
//!   `RouteWait` events. It reports suspected deadlock as a cycle
//!   witness naming the ring of messages and channels, and flags
//!   starved messages — all without touching engine internals.
//!
//! The `ftr-trace` binary reads a trace in either format — JSONL as
//! written by `JsonlSink`, or the compact binary FTB as written by
//! `ftr_obs::BinSink` (both reachable via the bench harness's
//! `FTR_TRACE_DIR`) — sniffed from content by [`EventReader`], replays
//! it through both halves, prints the human summary and optionally
//! writes the JSON report.

pub mod diagnose;
pub mod input;
pub mod journey;
pub mod report;

pub use diagnose::{DeadlockWitness, DiagnoserConfig, DiagnoserSink, Starvation, WaitEdge};
pub use input::{replay, EventReader, ReadError, TraceFormat};
pub use journey::{
    Attempt, Attribution, BookSummary, ChannelKey, ChannelStats, ChannelUse, Hop, Journey,
    JourneyBook, Outcome, Tally,
};
pub use report::TraceReport;
