//! Format-transparent trace input: JSONL or FTB, sniffed from content.
//!
//! Every consumer in this crate folds [`TraceEvent`]s; which bytes they
//! came from is an input detail. [`EventReader`] hides it: it peeks at
//! the first four bytes of any stream — file or stdin — and decodes
//! either JSON Lines (as written by `JsonlSink`) or the compact FTB
//! binary format (as written by `BinSink`), yielding the same typed
//! events either way. Both paths are streaming: neither materializes
//! the trace, so a multi-gigabyte fleet capture replays in O(1) memory.
//!
//! [`replay`] is the canonical consumption loop — feed every event to a
//! [`JourneyBook`] and (optionally) a [`DiagnoserSink`] — shared by the
//! `ftr-trace` CLI and the differential tests.

use crate::diagnose::DiagnoserSink;
use crate::journey::JourneyBook;
use ftr_obs::ftb::{FtbHeader, FtbReader, FTB_MAGIC};
use ftr_obs::{TraceEvent, TraceSink};
use std::io::{BufRead, BufReader, Cursor, Read};
use std::path::Path;

/// The wire format a stream turned out to be.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceFormat {
    /// JSON Lines, one `TraceEvent::to_json()` object per line.
    Jsonl,
    /// Compact binary (`ftr_obs::ftb`).
    Ftb,
}

impl TraceFormat {
    /// Lowercase name for messages.
    pub fn name(self) -> &'static str {
        match self {
            TraceFormat::Jsonl => "jsonl",
            TraceFormat::Ftb => "ftb",
        }
    }
}

/// Why reading a trace stopped.
#[derive(Clone, Debug)]
pub enum ReadError {
    /// The underlying reader failed (I/O, not content).
    Io(String),
    /// The content is not a valid trace (bad JSON line, bad opcode,
    /// truncated FTB stream).
    Malformed(String),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(m) | ReadError::Malformed(m) => f.write_str(m),
        }
    }
}

type Input = BufReader<Box<dyn Read>>;

enum Inner {
    Jsonl { r: Input, line_no: u64 },
    Ftb(Box<FtbReader<Input>>),
}

/// A streaming reader over either trace format.
pub struct EventReader {
    inner: Inner,
}

impl EventReader {
    /// Opens `path` and sniffs its format from the leading bytes.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, ReadError> {
        let f = std::fs::File::open(&path)
            .map_err(|e| ReadError::Io(format!("cannot open {}: {e}", path.as_ref().display())))?;
        EventReader::from_reader(f)
    }

    /// Wraps any byte stream (e.g. stdin) and sniffs its format.
    ///
    /// A stream shorter than the FTB magic is treated as (possibly
    /// empty) JSONL — an empty trace is valid in both formats and folds
    /// to an empty book either way.
    pub fn from_reader(r: impl Read + 'static) -> Result<Self, ReadError> {
        let mut r: Box<dyn Read> = Box::new(r);
        // peek exactly enough to recognize the magic, then stitch the
        // consumed prefix back in front of the rest
        let mut prefix = [0u8; 4];
        let mut got = 0;
        while got < 4 {
            match r.read(&mut prefix[got..]) {
                Ok(0) => break,
                Ok(n) => got += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(ReadError::Io(format!("read error: {e}"))),
            }
        }
        let is_ftb = got == 4 && prefix == FTB_MAGIC;
        let whole: Box<dyn Read> = Box::new(Cursor::new(prefix[..got].to_vec()).chain(r));
        let buf = BufReader::new(whole);
        if is_ftb {
            let ftb = FtbReader::from_reader(buf).map_err(ReadError::Malformed)?;
            Ok(EventReader { inner: Inner::Ftb(Box::new(ftb)) })
        } else {
            Ok(EventReader { inner: Inner::Jsonl { r: buf, line_no: 0 } })
        }
    }

    /// Which format the stream turned out to be.
    pub fn format(&self) -> TraceFormat {
        match &self.inner {
            Inner::Jsonl { .. } => TraceFormat::Jsonl,
            Inner::Ftb(_) => TraceFormat::Ftb,
        }
    }

    /// The FTB stream header, when the stream is FTB.
    pub fn header(&self) -> Option<&FtbHeader> {
        match &self.inner {
            Inner::Jsonl { .. } => None,
            Inner::Ftb(r) => Some(r.header()),
        }
    }
}

impl Iterator for EventReader {
    type Item = Result<TraceEvent, ReadError>;

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.inner {
            Inner::Jsonl { r, line_no } => {
                let mut line = String::new();
                loop {
                    line.clear();
                    *line_no += 1;
                    match r.read_line(&mut line) {
                        Ok(0) => return None,
                        Ok(_) => {
                            if line.trim().is_empty() {
                                continue;
                            }
                            return Some(TraceEvent::from_json(line.trim_end()).map_err(|e| {
                                ReadError::Malformed(format!("malformed trace line {line_no}: {e}"))
                            }));
                        }
                        Err(e) => {
                            return Some(Err(ReadError::Io(format!(
                                "read error at line {line_no}: {e}"
                            ))));
                        }
                    }
                }
            }
            Inner::Ftb(r) => r.next().map(|res| res.map_err(ReadError::Malformed)),
        }
    }
}

/// Folds every event of `reader` into `book` and, when given, the
/// online diagnoser (closing out its final scan period). Returns the
/// number of events consumed; stops at the first malformed event.
pub fn replay(
    reader: EventReader,
    book: &mut JourneyBook,
    diag: Option<&DiagnoserSink>,
) -> Result<u64, ReadError> {
    let mut n = 0u64;
    for ev in reader {
        let ev = ev?;
        book.fold(&ev);
        if let Some(d) = diag {
            d.record(&ev);
        }
        n += 1;
    }
    if let Some(d) = diag {
        // the trace may end inside a scan period; close it out
        d.scan_now();
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftr_obs::ftb::BinSink;
    use ftr_obs::{EventKind, JsonlSink};
    use ftr_topo::NodeId;

    fn events() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                cycle: 0,
                kind: EventKind::Inject { msg: 1, src: NodeId(0), dst: NodeId(3), len_flits: 4 },
            },
            TraceEvent { cycle: 9, kind: EventKind::Deliver { node: NodeId(3), msg: 1 } },
        ]
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ftr-input-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn sniffs_and_reads_both_formats() {
        let jsonl = tmp("t.jsonl");
        let ftb = tmp("t.ftb");
        {
            let s = JsonlSink::create(&jsonl).unwrap();
            events().iter().for_each(|e| s.record(e));
        }
        {
            let s = BinSink::create(&ftb, FtbHeader::new().with("seed", 5u64)).unwrap();
            events().iter().for_each(|e| s.record(e));
            s.finalize().unwrap();
        }
        let r = EventReader::open(&jsonl).unwrap();
        assert_eq!(r.format(), TraceFormat::Jsonl);
        assert!(r.header().is_none());
        let a: Vec<TraceEvent> = r.map(|e| e.unwrap()).collect();

        let r = EventReader::open(&ftb).unwrap();
        assert_eq!(r.format(), TraceFormat::Ftb);
        assert_eq!(r.header().unwrap().seed(), Some(5));
        let b: Vec<TraceEvent> = r.map(|e| e.unwrap()).collect();

        assert_eq!(a, events());
        assert_eq!(a, b);
    }

    #[test]
    fn empty_and_tiny_streams_are_jsonl() {
        let r = EventReader::from_reader(std::io::empty()).unwrap();
        assert_eq!(r.format(), TraceFormat::Jsonl);
        assert_eq!(r.count(), 0);
        let r = EventReader::from_reader(&b"\n\n"[..]).unwrap();
        assert_eq!(r.count(), 0);
    }

    #[test]
    fn replay_folds_both_formats_identically() {
        let mut direct = JourneyBook::new();
        direct.fold_all(&events());

        let ftb = tmp("r.ftb");
        let s = BinSink::create(&ftb, FtbHeader::new()).unwrap();
        events().iter().for_each(|e| s.record(e));
        s.finalize().unwrap();

        let mut book = JourneyBook::new();
        let n = replay(EventReader::open(&ftb).unwrap(), &mut book, None).unwrap();
        assert_eq!(n, 2);
        assert_eq!(book.summary(), direct.summary());
    }

    #[test]
    fn malformed_lines_and_truncated_ftb_error_out() {
        let r = EventReader::from_reader(&b"{\"cycle\":1}\n"[..]).unwrap();
        let errs: Vec<_> = r.filter_map(|e| e.err()).collect();
        assert_eq!(errs.len(), 1);
        assert!(matches!(&errs[0], ReadError::Malformed(m) if m.contains("line 1")));

        // an FTB stream cut before the END marker must not fold cleanly
        let path = tmp("cut.ftb");
        let s = BinSink::create(&path, FtbHeader::new()).unwrap();
        events().iter().for_each(|e| s.record(e));
        s.flush(); // no finalize
        drop_without_finalize(s, &path);
        let r = EventReader::open(&path).unwrap();
        let last = r.last().unwrap();
        assert!(matches!(last, Err(ReadError::Malformed(ref m)) if m.contains("truncated")));
    }

    /// Dropping a BinSink finalizes it; to model a crash-cut file,
    /// truncate the END marker back off after the drop.
    fn drop_without_finalize(s: BinSink<std::fs::File>, path: &std::path::Path) {
        drop(s);
        let bytes = std::fs::read(path).unwrap();
        std::fs::write(path, &bytes[..bytes.len() - 1]).unwrap();
    }
}
