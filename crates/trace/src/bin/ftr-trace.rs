//! `ftr-trace` — analyse a trace stream (JSONL or FTB).
//!
//! ```text
//! ftr-trace <trace.jsonl | trace.ftb | -> [--report <out.json>] [--top <n>]
//!           [--no-diagnose] [--scan-period <n>] [--stale-window <n>]
//!           [--min-blocked <n>] [--starvation-window <n>]
//! ```
//!
//! Reads the trace — JSON Lines as written by `JsonlSink` or compact
//! binary FTB as written by `BinSink`, sniffed from content, `-` for
//! stdin — folds it into journeys, replays it through the online
//! diagnoser, prints a human summary to stdout and, with `--report`,
//! writes the machine-readable JSON report (validated before writing).
//! Exits 1 on usage or I/O errors, 2 on a malformed or truncated trace.

use ftr_obs::json;
use ftr_trace::{DiagnoserConfig, DiagnoserSink, EventReader, JourneyBook, ReadError, TraceReport};
use std::process::ExitCode;

struct Args {
    input: String,
    report: Option<String>,
    top: usize,
    diagnose: bool,
    cfg: DiagnoserConfig,
}

fn usage() -> String {
    "usage: ftr-trace <trace.jsonl | trace.ftb | -> [--report <out.json>] [--top <n>] \
     [--no-diagnose] [--scan-period <n>] [--stale-window <n>] \
     [--min-blocked <n>] [--starvation-window <n>]"
        .to_string()
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut input = None;
    let mut args = Args {
        input: String::new(),
        report: None,
        top: 10,
        diagnose: true,
        cfg: DiagnoserConfig::default(),
    };
    fn num(it: &mut std::slice::Iter<'_, String>, name: &str) -> Result<u64, String> {
        it.next()
            .ok_or_else(|| format!("{name} needs a value"))?
            .parse()
            .map_err(|e| format!("bad {name}: {e}"))
    }
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--report" => args.report = Some(it.next().ok_or("--report needs a path")?.clone()),
            "--top" => args.top = num(&mut it, "--top")? as usize,
            "--no-diagnose" => args.diagnose = false,
            "--scan-period" => args.cfg.scan_period = num(&mut it, "--scan-period")?.max(1),
            "--stale-window" => args.cfg.stale_window = num(&mut it, "--stale-window")?,
            "--min-blocked" => args.cfg.min_blocked = num(&mut it, "--min-blocked")?,
            "--starvation-window" => {
                args.cfg.starvation_window = num(&mut it, "--starvation-window")?;
            }
            "-h" | "--help" => return Err(usage()),
            other if input.is_none() && (!other.starts_with('-') || other == "-") => {
                input = Some(other.to_string());
            }
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    args.input = input.ok_or_else(usage)?;
    Ok(args)
}

fn run(args: &Args) -> Result<(TraceReport, u64), (u8, String)> {
    let io_err = |e: ReadError| match e {
        ReadError::Io(m) => (1, m),
        ReadError::Malformed(m) => (2, m),
    };
    let reader = if args.input == "-" {
        EventReader::from_reader(std::io::stdin())
    } else {
        EventReader::open(&args.input)
    }
    .map_err(io_err)?;
    if let Some(h) = reader.header() {
        let meta: Vec<String> = h.meta.iter().map(|(k, v)| format!("{k}={v}")).collect();
        eprintln!(
            "ftr-trace: ftb stream (schema {}){}",
            h.schema,
            if meta.is_empty() { String::new() } else { format!(", {}", meta.join(", ")) }
        );
    }
    let mut book = JourneyBook::new();
    let diag = args.diagnose.then(|| DiagnoserSink::new(args.cfg));
    let events = ftr_trace::replay(reader, &mut book, diag.as_ref()).map_err(io_err)?;
    Ok((TraceReport::build(&book, diag.as_ref(), args.top), events))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(1);
        }
    };
    let (report, lines) = match run(&args) {
        Ok(r) => r,
        Err((code, msg)) => {
            eprintln!("ftr-trace: {msg}");
            return ExitCode::from(code);
        }
    };
    print!("{}", report.human_summary());
    if let Some(path) = &args.report {
        let payload = report.to_json();
        if let Err(e) = json::validate(&payload) {
            eprintln!("ftr-trace: internal error: report JSON invalid: {e}");
            return ExitCode::from(1);
        }
        if let Err(e) = std::fs::write(path, payload + "\n") {
            eprintln!("ftr-trace: cannot write {path}: {e}");
            return ExitCode::from(1);
        }
        eprintln!("ftr-trace: report written to {path} ({lines} events)");
    }
    ExitCode::SUCCESS
}
