//! Machine-readable report and human summary over a folded trace.

use crate::diagnose::{DeadlockWitness, DiagnoserSink, Starvation};
use crate::journey::{BookSummary, ChannelKey, ChannelStats, JourneyBook, Tally};
use ftr_obs::json::{self, Obj};
use std::fmt::Write as _;

/// Everything `ftr-trace` reports about one trace: aggregate journey
/// accounting, latency attribution, channel hot spots, and (when a
/// diagnoser ran) deadlock/starvation findings.
#[derive(Clone, Debug)]
pub struct TraceReport {
    /// Events folded.
    pub events_total: u64,
    /// First and last cycle stamp, if the trace was non-empty.
    pub span: Option<(u64, u64)>,
    /// Events referencing messages never injected in this trace.
    pub orphans: u64,
    /// Structural inconsistencies found while folding.
    pub anomalies: Vec<String>,
    /// Fault-injection events (link + node).
    pub fault_events: u64,
    /// Repair events (link + node).
    pub repair_events: u64,
    /// Detection alarms (a detector declared a local fault).
    pub alarm_events: u64,
    /// Control-plane words dropped on unusable links.
    pub control_drops: u64,
    /// Journey aggregates.
    pub summary: BookSummary,
    /// Busiest channels, by busy cycles, descending.
    pub top_busy: Vec<(ChannelKey, ChannelStats)>,
    /// Most contended channels, by stalled message-cycles, descending.
    pub top_stalled: Vec<(ChannelKey, ChannelStats)>,
    /// Deadlock witness, when a diagnoser ran and found one.
    pub deadlock: Option<DeadlockWitness>,
    /// Starvation reports, when a diagnoser ran.
    pub starved: Vec<Starvation>,
    /// Events the producing sink failed to write (`write_errors()` of a
    /// `JsonlSink`/`BinSink`), when the producer is known. `Some(n > 0)`
    /// brands the whole report: it was folded from an incomplete trace.
    pub trace_write_errors: Option<u64>,
}

impl TraceReport {
    /// Builds the report from a folded book and an optional diagnoser.
    /// `top` bounds both channel leaderboards.
    pub fn build(book: &JourneyBook, diag: Option<&DiagnoserSink>, top: usize) -> Self {
        let mut by_busy: Vec<(ChannelKey, ChannelStats)> =
            book.channels().iter().map(|(k, v)| (*k, *v)).collect();
        let mut by_stall = by_busy.clone();
        by_busy.sort_by(|a, b| b.1.busy_cycles.cmp(&a.1.busy_cycles).then(a.0.cmp(&b.0)));
        by_stall.sort_by(|a, b| b.1.stalled_cycles.cmp(&a.1.stalled_cycles).then(a.0.cmp(&b.0)));
        by_busy.truncate(top);
        by_stall.retain(|(_, s)| s.stalled_cycles > 0);
        by_stall.truncate(top);
        TraceReport {
            events_total: book.events_total(),
            span: book.span(),
            orphans: book.orphans(),
            anomalies: book.anomalies().to_vec(),
            fault_events: book.fault_events(),
            repair_events: book.repair_events(),
            alarm_events: book.alarm_events(),
            control_drops: book.control_drops(),
            summary: book.summary(),
            top_busy: by_busy,
            top_stalled: by_stall,
            deadlock: diag.and_then(DiagnoserSink::deadlock),
            starved: diag.map(|d| d.starved()).unwrap_or_default(),
            trace_write_errors: None,
        }
    }

    /// Records how many events the producing sink failed to write, for
    /// reports built in-process next to the sink that captured the
    /// trace (offline consumers cannot know and leave it `None`).
    pub fn with_write_errors(mut self, n: u64) -> Self {
        self.trace_write_errors = Some(n);
        self
    }

    /// Renders the report as one JSON object (validated against the
    /// strict in-tree grammar by construction; the CLI re-validates
    /// before writing).
    pub fn to_json(&self) -> String {
        let tally = |t: &Tally| {
            let mut o = Obj::new();
            o.num("count", t.count);
            o.num("sum", t.sum);
            o.num("min", t.min);
            o.num("max", t.max);
            o.float("mean", t.mean());
            o.finish()
        };
        let chan = |(k, s): &(ChannelKey, ChannelStats)| {
            let mut o = Obj::new();
            o.num("node", k.0);
            o.num("port", k.1);
            o.num("vc", k.2);
            o.num("busy_cycles", s.busy_cycles);
            o.num("acquires", s.acquires);
            o.num("stalled_cycles", s.stalled_cycles);
            o.finish()
        };
        let s = &self.summary;
        let mut o = Obj::new();
        o.num("events", self.events_total);
        match self.span {
            Some((a, b)) => {
                o.num("first_cycle", a);
                o.num("last_cycle", b);
            }
            None => {
                o.field("first_cycle", "null");
                o.field("last_cycle", "null");
            }
        }
        o.num("orphans", self.orphans);
        match self.trace_write_errors {
            Some(n) => o.num("trace_write_errors", n),
            None => o.field("trace_write_errors", "null"),
        };
        o.field("anomalies", json::array(self.anomalies.iter().map(|a| json::string(a))));
        o.num("fault_events", self.fault_events);
        o.num("repair_events", self.repair_events);
        o.num("alarm_events", self.alarm_events);
        o.num("control_drops", self.control_drops);
        o.num("injected", s.injected);
        o.num("delivered", s.delivered);
        o.num("killed", s.killed);
        o.num("unroutable", s.unroutable);
        o.num("in_flight", s.in_flight);
        o.num("retried", s.retried);
        o.num("rejected_sends", s.rejected_sends);
        o.field("latency", tally(&s.latency));
        o.field("hops", tally(&s.hops));
        o.field("steps", tally(&s.steps));
        {
            let a = &s.attribution;
            let mut at = Obj::new();
            at.num("total", a.total);
            at.num("src_queue", a.src_queue);
            at.num("retry_backoff", a.retry_backoff);
            at.num("blocked", a.blocked);
            at.num("transit", a.transit);
            o.field("attribution", at.finish());
        }
        o.field("top_busy_channels", json::array(self.top_busy.iter().map(chan)));
        o.field("top_stalled_channels", json::array(self.top_stalled.iter().map(chan)));
        match &self.deadlock {
            Some(w) => {
                let mut d = Obj::new();
                d.num("cycle", w.cycle);
                d.num("knot_size", w.knot_size as u64);
                d.field(
                    "ring",
                    json::array(w.ring.iter().map(|e| {
                        let mut r = Obj::new();
                        r.num("msg", e.msg);
                        r.num("node", e.node);
                        r.num("port", e.port);
                        r.num("vc", e.vc);
                        r.num("holder", e.holder);
                        r.finish()
                    })),
                );
                o.field("deadlock", d.finish());
            }
            None => {
                o.field("deadlock", "null");
            }
        }
        o.field(
            "starved",
            json::array(self.starved.iter().map(|s| {
                let mut r = Obj::new();
                r.num("msg", s.msg);
                r.num("node", s.node);
                r.num("since", s.since);
                r.num("detected", s.detected);
                r.finish()
            })),
        );
        o.finish()
    }

    /// A short human-readable summary (what the CLI prints).
    pub fn human_summary(&self) -> String {
        let s = &self.summary;
        let mut out = String::new();
        let _ = match self.span {
            Some((a, b)) => {
                writeln!(out, "trace: {} events over cycles {a}..{b}", self.events_total)
            }
            None => writeln!(out, "trace: empty"),
        };
        let _ = writeln!(
            out,
            "messages: {} injected, {} delivered, {} killed, {} unroutable, {} in flight, {} retries",
            s.injected, s.delivered, s.killed, s.unroutable, s.in_flight, s.retried
        );
        if self.fault_events + self.repair_events > 0 {
            let _ = writeln!(
                out,
                "faults: {} injected, {} repaired",
                self.fault_events, self.repair_events
            );
        }
        if self.alarm_events + self.control_drops > 0 {
            let _ = writeln!(
                out,
                "detection: {} alarms, {} control words dropped",
                self.alarm_events, self.control_drops
            );
        }
        if s.latency.count > 0 {
            let _ = writeln!(
                out,
                "latency: mean {:.1} cycles (min {}, max {}), hops mean {:.2}, steps/decision mean {:.2}",
                s.latency.mean(),
                s.latency.min,
                s.latency.max,
                s.hops.mean(),
                s.steps.mean()
            );
            let a = &s.attribution;
            if a.total > 0 {
                let pct = |v: u64| 100.0 * v as f64 / a.total as f64;
                let _ = writeln!(
                    out,
                    "attribution: transit {:.1}%, blocked {:.1}%, source queue {:.1}%, retry backoff {:.1}%",
                    pct(a.transit),
                    pct(a.blocked),
                    pct(a.src_queue),
                    pct(a.retry_backoff)
                );
            }
        }
        for (k, c) in self.top_stalled.iter().take(3) {
            let _ = writeln!(
                out,
                "hot channel: node {} port {} vc {} — {} stalled message-cycles, busy {} cycles",
                k.0, k.1, k.2, c.stalled_cycles, c.busy_cycles
            );
        }
        match &self.deadlock {
            Some(w) => {
                let _ = writeln!(
                    out,
                    "DEADLOCK suspected at cycle {} (knot of {}):",
                    w.cycle, w.knot_size
                );
                for e in &w.ring {
                    let _ = writeln!(
                        out,
                        "  msg {} at node {} wants (port {}, vc {}) held by msg {}",
                        e.msg, e.node, e.port, e.vc, e.holder
                    );
                }
            }
            None => {
                let _ = writeln!(out, "deadlock: none suspected");
            }
        }
        if !self.starved.is_empty() {
            let _ = writeln!(out, "starved messages: {}", self.starved.len());
            for s in self.starved.iter().take(5) {
                let _ = writeln!(
                    out,
                    "  msg {} at node {}: no progress since cycle {} (flagged at {})",
                    s.msg, s.node, s.since, s.detected
                );
            }
        }
        if self.orphans > 0 {
            let _ = writeln!(
                out,
                "warning: {} orphan events — the trace looks truncated",
                self.orphans
            );
        }
        if let Some(n) = self.trace_write_errors.filter(|&n| n > 0) {
            let _ = writeln!(
                out,
                "warning: the capturing sink dropped {n} events — this trace is incomplete"
            );
        }
        if !self.anomalies.is_empty() {
            let _ = writeln!(
                out,
                "warning: {} structural anomalies (first: {})",
                self.anomalies.len(),
                self.anomalies[0]
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftr_obs::{EventKind, TraceEvent};
    use ftr_topo::{NodeId, PortId, VcId};

    fn small_book() -> JourneyBook {
        let mut book = JourneyBook::new();
        let evs = [
            TraceEvent {
                cycle: 0,
                kind: EventKind::Inject { msg: 1, src: NodeId(0), dst: NodeId(2), len_flits: 4 },
            },
            TraceEvent {
                cycle: 1,
                kind: EventKind::RouteDecision {
                    node: NodeId(0),
                    msg: 1,
                    in_port: None,
                    in_vc: VcId(0),
                    outcome: ftr_obs::RouteOutcome::Routed(PortId(0), VcId(0)),
                    steps: 2,
                    misrouted: false,
                },
            },
            TraceEvent {
                cycle: 1,
                kind: EventKind::VcAcquire {
                    node: NodeId(0),
                    msg: 1,
                    port: PortId(0),
                    vc: VcId(0),
                },
            },
            TraceEvent {
                cycle: 6,
                kind: EventKind::VcRelease {
                    node: NodeId(0),
                    msg: 1,
                    port: PortId(0),
                    vc: VcId(0),
                },
            },
            TraceEvent { cycle: 9, kind: EventKind::Deliver { node: NodeId(2), msg: 1 } },
        ];
        book.fold_all(&evs);
        book
    }

    #[test]
    fn report_json_is_valid_and_carries_the_counts() {
        let book = small_book();
        let rep = TraceReport::build(&book, None, 10);
        let j = rep.to_json();
        json::validate(&j).expect("report JSON must satisfy the strict grammar");
        let v = json::parse(&j).unwrap();
        assert_eq!(v.get("injected").and_then(|x| x.as_u64()), Some(1));
        assert_eq!(v.get("delivered").and_then(|x| x.as_u64()), Some(1));
        assert!(v.get("deadlock").unwrap().is_null());
        let lat = v.get("latency").unwrap();
        assert_eq!(lat.get("sum").and_then(|x| x.as_u64()), Some(9));
        let at = v.get("attribution").unwrap();
        assert_eq!(at.get("total").and_then(|x| x.as_u64()), Some(9));
        assert_eq!(at.get("src_queue").and_then(|x| x.as_u64()), Some(1));
    }

    #[test]
    fn write_errors_surface_in_json_and_summary() {
        let book = small_book();
        let clean = TraceReport::build(&book, None, 10);
        let v = json::parse(&clean.to_json()).unwrap();
        assert!(v.get("trace_write_errors").unwrap().is_null(), "unknown producer stays null");

        let dirty = TraceReport::build(&book, None, 10).with_write_errors(3);
        let v = json::parse(&dirty.to_json()).unwrap();
        assert_eq!(v.get("trace_write_errors").and_then(|x| x.as_u64()), Some(3));
        assert!(dirty.human_summary().contains("dropped 3 events"), "{}", dirty.human_summary());

        let whole = TraceReport::build(&book, None, 10).with_write_errors(0);
        assert!(!whole.human_summary().contains("incomplete"));
    }

    #[test]
    fn human_summary_mentions_the_headline_numbers() {
        let book = small_book();
        let rep = TraceReport::build(&book, None, 10);
        let text = rep.human_summary();
        assert!(text.contains("1 injected"), "{text}");
        assert!(text.contains("1 delivered"), "{text}");
        assert!(text.contains("deadlock: none suspected"), "{text}");
    }
}
