//! Offline journey reconstruction: fold a cycle-ordered event stream into
//! per-message [`Journey`]s with exact latency attribution.
//!
//! The reconstruction mirrors the engine's accounting rules precisely —
//! the integration tests assert equality, not approximation, against
//! `SimStats` on deterministic runs:
//!
//! - a journey's latency is `deliver − inject` using the *original*
//!   injection cycle (retries do not reset the baseline, matching
//!   `MsgMeta::inject_cycle`);
//! - a journey's hop count is the number of `VcAcquire` events in its
//!   *final* attempt (each acquire is one switch traversal of the head,
//!   which is how `Header::hops` is counted);
//! - a `Kill`/`Unroutable` event not followed by a `Retry` is the final
//!   termination — this covers both attempts-exhausted rips and the
//!   retry queue's silent abandonment of messages whose endpoint died
//!   during backoff (the engine terminates those without a new event, so
//!   the *last* rip event already names the correct cause).

use ftr_obs::{EventKind, TraceEvent};
use std::collections::BTreeMap;

/// Online count/sum/min/max accumulator (the trace-side mirror of the
/// simulator's `Accum`, kept dependency-free so `ftr-trace` does not pull
/// the engine in).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Tally {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

impl Tally {
    /// Folds one sample in.
    pub fn add(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Mean of the samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// How a journey ended (or that it has not).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Tail ejected at `node` on `cycle`.
    Delivered {
        /// Destination node.
        node: u32,
        /// Delivery cycle.
        cycle: u64,
    },
    /// Final kill (ripped by a fault, no further retry).
    Killed {
        /// Cycle of the final rip.
        cycle: u64,
    },
    /// Final unroutable verdict (no further retry).
    Unroutable {
        /// Cycle of the final verdict.
        cycle: u64,
    },
    /// Still in the network (or waiting out a retry backoff) when the
    /// trace ended.
    InFlight,
}

/// The output channel a hop acquired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChannelUse {
    /// Acquisition cycle.
    pub cycle: u64,
    /// Output port.
    pub port: u8,
    /// Output virtual channel.
    pub vc: u8,
}

/// One routing decision point of one attempt: the head flit at one node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hop {
    /// The deciding node.
    pub node: u32,
    /// Cycle the routing decision completed.
    pub decided_at: u64,
    /// Rule-interpretation steps the decision took.
    pub steps: u32,
    /// The decision put the message on a non-minimal path.
    pub misrouted: bool,
    /// Cycles the head spent blocked at this node (one `VcStall` or
    /// `RouteWait` event per blocked cycle).
    pub blocked_cycles: u64,
    /// The output channel eventually acquired (`None` at the destination,
    /// or if the attempt died blocked here).
    pub acquired: Option<ChannelUse>,
}

/// One injection attempt of a message (the original send, or a retry).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Attempt {
    /// Attempt number (1 = original injection; matches the `Retry`
    /// event's `attempt` field).
    pub number: u32,
    /// Cycle this attempt entered the source queue.
    pub start: u64,
    /// Cycle of this attempt's terminal event, once seen.
    pub end: Option<u64>,
    /// Decision points, in path order.
    pub hops: Vec<Hop>,
}

impl Attempt {
    fn new(number: u32, start: u64) -> Self {
        Attempt { number, start, end: None, hops: Vec::new() }
    }

    /// Cycle of the first routing decision, if any was made.
    pub fn first_decision(&self) -> Option<u64> {
        self.hops.first().map(|h| h.decided_at)
    }

    /// Switch traversals (acquired channels) in this attempt.
    pub fn acquires(&self) -> u64 {
        self.hops.iter().filter(|h| h.acquired.is_some()).count() as u64
    }
}

/// Where a delivered message's cycles went. The four buckets are
/// disjoint and sum to `total` exactly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Attribution {
    /// End-to-end latency: delivery − original injection.
    pub total: u64,
    /// Source queueing: injection (or re-injection) until the first
    /// routing decision of each attempt.
    pub src_queue: u64,
    /// Retry backoff: rip of attempt *n* until re-injection of *n*+1.
    pub retry_backoff: u64,
    /// Blocked cycles: head stalled for a channel (`VcStall`) or held by
    /// the algorithm (`RouteWait`), over all attempts.
    pub blocked: u64,
    /// Everything else: flit movement, decision latency, streaming.
    pub transit: u64,
}

/// The reconstructed life of one message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Journey {
    /// Message id.
    pub msg: u64,
    /// Source node.
    pub src: u32,
    /// Destination node.
    pub dst: u32,
    /// Message length in flits.
    pub len_flits: u32,
    /// Original injection cycle (attempt 1).
    pub injected_at: u64,
    /// Final outcome.
    pub outcome: Outcome,
    /// Injection attempts, in order.
    pub attempts: Vec<Attempt>,
}

impl Journey {
    /// End-to-end latency in cycles, for delivered journeys.
    pub fn latency(&self) -> Option<u64> {
        match self.outcome {
            Outcome::Delivered { cycle, .. } => Some(cycle - self.injected_at),
            _ => None,
        }
    }

    /// Hops of the delivering attempt (how the engine counts
    /// `SimStats::hops`); `None` unless delivered.
    pub fn hops(&self) -> Option<u64> {
        match self.outcome {
            Outcome::Delivered { .. } => self.attempts.last().map(Attempt::acquires),
            _ => None,
        }
    }

    /// Number of re-injections this journey went through.
    pub fn retries(&self) -> u32 {
        (self.attempts.len() as u32).saturating_sub(1)
    }

    /// Total blocked cycles across all attempts.
    pub fn blocked_cycles(&self) -> u64 {
        self.attempts.iter().flat_map(|a| &a.hops).map(|h| h.blocked_cycles).sum()
    }

    /// Exact latency attribution, for delivered journeys.
    ///
    /// Each bucket covers a disjoint set of cycles within the journey's
    /// lifetime: source-queue windows are `[attempt.start,
    /// first_decision)` (for attempts that died undecided, the whole
    /// attempt), backoff windows are `[attempt.end, next.start)`, and
    /// blocked cycles are individual stall events (at most one per cycle
    /// per message, always at or after the attempt's first decision).
    /// `transit` is the exact remainder, so the buckets always sum to
    /// `total`.
    pub fn attribution(&self) -> Option<Attribution> {
        let total = self.latency()?;
        let mut src_queue = 0u64;
        let mut retry_backoff = 0u64;
        for (i, a) in self.attempts.iter().enumerate() {
            match a.first_decision() {
                Some(fd) => src_queue += fd - a.start,
                // died in the source queue before any decision
                None => src_queue += a.end.unwrap_or(a.start) - a.start,
            }
            if i > 0 {
                if let Some(prev_end) = self.attempts[i - 1].end {
                    retry_backoff += a.start - prev_end;
                }
            }
        }
        let blocked = self.blocked_cycles();
        let transit = total.saturating_sub(src_queue + retry_backoff + blocked);
        Some(Attribution { total, src_queue, retry_backoff, blocked, transit })
    }
}

/// Per-channel utilization and contention, keyed `(node, port, vc)`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Cycles the channel was owned by some worm (acquire → release, or
    /// acquire → kill for ripped worms, which release without an event).
    pub busy_cycles: u64,
    /// Times the channel was allocated to a head flit.
    pub acquires: u64,
    /// Message-cycles spent blocked *wanting* this channel (from
    /// `VcStall` on the channel and `RouteWait` want-sets naming it).
    pub stalled_cycles: u64,
}

/// Channel identity: `(node, out_port, out_vc)`.
pub type ChannelKey = (u32, u8, u8);

/// Aggregate view of a folded trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BookSummary {
    /// Messages injected.
    pub injected: u64,
    /// Messages delivered.
    pub delivered: u64,
    /// Final kills.
    pub killed: u64,
    /// Final unroutable verdicts.
    pub unroutable: u64,
    /// Journeys still open at end of trace.
    pub in_flight: u64,
    /// Re-injection events (attempt-level, matching
    /// `SimStats::retried_msgs`).
    pub retried: u64,
    /// Send rejections (endpoint faulty at send time).
    pub rejected_sends: u64,
    /// Latency of delivered messages.
    pub latency: Tally,
    /// Hops of delivered messages (final attempt).
    pub hops: Tally,
    /// Rule-interpretation steps over every routing decision.
    pub steps: Tally,
    /// Sum of per-journey attributions over delivered messages.
    pub attribution: Attribution,
}

/// Folds a cycle-ordered trace-event stream into journeys and channel
/// statistics. Feed events through [`JourneyBook::fold`] (or
/// [`JourneyBook::fold_all`]) in trace order, then read the results.
#[derive(Debug, Default)]
pub struct JourneyBook {
    journeys: BTreeMap<u64, Journey>,
    channels: BTreeMap<ChannelKey, ChannelStats>,
    /// Currently-owned channels: key → (owner msg, acquire cycle).
    open: BTreeMap<ChannelKey, (u64, u64)>,
    /// Reverse index of `open`, for closing a killed worm's channels.
    open_by_msg: BTreeMap<u64, Vec<ChannelKey>>,
    retried: u64,
    rejected_sends: u64,
    orphans: u64,
    anomalies: Vec<String>,
    events_total: u64,
    first_cycle: Option<u64>,
    last_cycle: Option<u64>,
    fault_events: u64,
    repair_events: u64,
    alarm_events: u64,
    control_drops: u64,
}

impl JourneyBook {
    /// An empty book.
    pub fn new() -> Self {
        JourneyBook::default()
    }

    /// Folds one event. Events must arrive in trace (cycle) order.
    pub fn fold(&mut self, ev: &TraceEvent) {
        self.events_total += 1;
        if self.first_cycle.is_none() {
            self.first_cycle = Some(ev.cycle);
        }
        self.last_cycle = Some(ev.cycle);
        let cycle = ev.cycle;
        match &ev.kind {
            EventKind::Inject { msg, src, dst, len_flits } => {
                let j = Journey {
                    msg: *msg,
                    src: src.0,
                    dst: dst.0,
                    len_flits: *len_flits,
                    injected_at: cycle,
                    outcome: Outcome::InFlight,
                    attempts: vec![Attempt::new(1, cycle)],
                };
                if self.journeys.insert(*msg, j).is_some() {
                    self.anomalies.push(format!("msg {msg}: double inject at cycle {cycle}"));
                }
            }
            EventKind::Retry { msg, attempt } => {
                self.retried += 1;
                let Some(j) = self.journeys.get_mut(msg) else {
                    self.orphans += 1;
                    return;
                };
                j.outcome = Outcome::InFlight;
                j.attempts.push(Attempt::new(*attempt, cycle));
            }
            EventKind::RouteDecision { node, msg, steps, misrouted, .. } => {
                let Some(att) = self.attempt_mut(*msg) else { return };
                att.hops.push(Hop {
                    node: node.0,
                    decided_at: cycle,
                    steps: *steps,
                    misrouted: *misrouted,
                    blocked_cycles: 0,
                    acquired: None,
                });
            }
            EventKind::VcStall { node, msg, port, vc } => {
                self.blocked_cycle(*msg, node.0, cycle);
                self.channels.entry((node.0, port.0, vc.0)).or_default().stalled_cycles += 1;
            }
            EventKind::RouteWait { node, msg, wants } => {
                self.blocked_cycle(*msg, node.0, cycle);
                for (p, v) in wants {
                    self.channels.entry((node.0, p.0, v.0)).or_default().stalled_cycles += 1;
                }
            }
            EventKind::VcAcquire { node, msg, port, vc } => {
                let key = (node.0, port.0, vc.0);
                let Some(att) = self.attempt_mut(*msg) else { return };
                match att.hops.last_mut() {
                    Some(h) if h.node == node.0 => {
                        h.acquired = Some(ChannelUse { cycle, port: port.0, vc: vc.0 });
                    }
                    _ => self
                        .anomalies
                        .push(format!("msg {msg}: acquire at {} without decision", node.0)),
                }
                if let Some((owner, since)) = self.open.insert(key, (*msg, cycle)) {
                    // lost release — close the stale interval here
                    self.anomalies
                        .push(format!("channel {key:?}: acquired by {msg} while owned by {owner}"));
                    let ch = self.channels.entry(key).or_default();
                    ch.busy_cycles += cycle - since;
                }
                let ch = self.channels.entry(key).or_default();
                ch.acquires += 1;
                self.open_by_msg.entry(*msg).or_default().push(key);
            }
            EventKind::VcRelease { node, msg, port, vc } => {
                let key = (node.0, port.0, vc.0);
                match self.open.get(&key) {
                    Some((owner, since)) if owner == msg => {
                        self.channels.entry(key).or_default().busy_cycles += cycle - since;
                        self.open.remove(&key);
                        if let Some(v) = self.open_by_msg.get_mut(msg) {
                            v.retain(|k| k != &key);
                        }
                    }
                    _ => {
                        if self.journeys.contains_key(msg) {
                            self.anomalies
                                .push(format!("msg {msg}: release of unowned channel {key:?}"));
                        } else {
                            self.orphans += 1;
                        }
                    }
                }
            }
            EventKind::Deliver { node, msg } => {
                self.close_channels(*msg, cycle);
                let Some(j) = self.journeys.get_mut(msg) else {
                    self.orphans += 1;
                    return;
                };
                j.outcome = Outcome::Delivered { node: node.0, cycle };
                if let Some(a) = j.attempts.last_mut() {
                    a.end = Some(cycle);
                }
            }
            EventKind::Kill { msg } => {
                // ripped worms release their channels without VcRelease
                self.close_channels(*msg, cycle);
                let Some(j) = self.journeys.get_mut(msg) else {
                    self.orphans += 1;
                    return;
                };
                j.outcome = Outcome::Killed { cycle };
                if let Some(a) = j.attempts.last_mut() {
                    a.end = Some(cycle);
                }
            }
            EventKind::Unroutable { msg } => {
                self.close_channels(*msg, cycle);
                let Some(j) = self.journeys.get_mut(msg) else {
                    self.orphans += 1;
                    return;
                };
                j.outcome = Outcome::Unroutable { cycle };
                if let Some(a) = j.attempts.last_mut() {
                    a.end = Some(cycle);
                }
            }
            EventKind::SendRejected { .. } => self.rejected_sends += 1,
            EventKind::LinkFault { .. } | EventKind::NodeFault { .. } => self.fault_events += 1,
            EventKind::LinkRepair { .. } | EventKind::NodeRepair { .. } => {
                self.repair_events += 1;
            }
            EventKind::ControlSend { .. }
            | EventKind::ControlSettled { .. }
            | EventKind::Heartbeat { .. }
            | EventKind::Suspect { .. } => {}
            EventKind::Alarm { .. } => self.alarm_events += 1,
            EventKind::ControlDrop { .. } => self.control_drops += 1,
        }
    }

    /// Folds a whole stream.
    pub fn fold_all<'a>(&mut self, events: impl IntoIterator<Item = &'a TraceEvent>) {
        for ev in events {
            self.fold(ev);
        }
    }

    fn attempt_mut(&mut self, msg: u64) -> Option<&mut Attempt> {
        match self.journeys.get_mut(&msg) {
            Some(j) => j.attempts.last_mut(),
            None => {
                self.orphans += 1;
                None
            }
        }
    }

    /// Charges one blocked cycle to the message's current hop.
    fn blocked_cycle(&mut self, msg: u64, node: u32, cycle: u64) {
        let Some(att) = self.attempt_mut(msg) else { return };
        match att.hops.last_mut() {
            Some(h) if h.node == node => h.blocked_cycles += 1,
            _ => {
                // stall with no matching decision: keep the cycle charged
                // so attribution still balances
                att.hops.push(Hop {
                    node,
                    decided_at: cycle,
                    steps: 0,
                    misrouted: false,
                    blocked_cycles: 1,
                    acquired: None,
                });
                self.anomalies.push(format!("msg {msg}: stall at {node} without decision"));
            }
        }
    }

    /// Closes every channel interval a terminating message still owns.
    fn close_channels(&mut self, msg: u64, cycle: u64) {
        let Some(keys) = self.open_by_msg.remove(&msg) else { return };
        for key in keys {
            if let Some((owner, since)) = self.open.get(&key).copied() {
                if owner == msg {
                    self.channels.entry(key).or_default().busy_cycles += cycle - since;
                    self.open.remove(&key);
                }
            }
        }
    }

    /// The reconstructed journeys, by message id.
    pub fn journeys(&self) -> &BTreeMap<u64, Journey> {
        &self.journeys
    }

    /// Per-channel utilization/contention statistics.
    pub fn channels(&self) -> &BTreeMap<ChannelKey, ChannelStats> {
        &self.channels
    }

    /// Events whose message id was never injected in this trace (nonzero
    /// means the trace is truncated, e.g. a ring overflowed).
    pub fn orphans(&self) -> u64 {
        self.orphans
    }

    /// Structural inconsistencies found while folding. Empty for any
    /// complete trace; entries mean the stream violated engine
    /// invariants and the report is best-effort.
    pub fn anomalies(&self) -> &[String] {
        &self.anomalies
    }

    /// Total events folded.
    pub fn events_total(&self) -> u64 {
        self.events_total
    }

    /// First and last cycle stamp seen, if any events were folded.
    pub fn span(&self) -> Option<(u64, u64)> {
        Some((self.first_cycle?, self.last_cycle?))
    }

    /// Fault-injection events seen (link + node).
    pub fn fault_events(&self) -> u64 {
        self.fault_events
    }

    /// Repair events seen (link + node).
    pub fn repair_events(&self) -> u64 {
        self.repair_events
    }

    /// Detection alarms seen (a detector declared a local fault).
    pub fn alarm_events(&self) -> u64 {
        self.alarm_events
    }

    /// Control-plane messages dropped on unusable links.
    pub fn control_drops(&self) -> u64 {
        self.control_drops
    }

    /// Aggregates every journey into one [`BookSummary`].
    pub fn summary(&self) -> BookSummary {
        let mut s = BookSummary {
            injected: self.journeys.len() as u64,
            retried: self.retried,
            rejected_sends: self.rejected_sends,
            ..BookSummary::default()
        };
        for j in self.journeys.values() {
            for a in &j.attempts {
                for h in &a.hops {
                    s.steps.add(h.steps as u64);
                }
            }
            match j.outcome {
                Outcome::Delivered { .. } => {
                    s.delivered += 1;
                    s.latency.add(j.latency().expect("delivered"));
                    s.hops.add(j.hops().expect("delivered"));
                    let at = j.attribution().expect("delivered");
                    s.attribution.total += at.total;
                    s.attribution.src_queue += at.src_queue;
                    s.attribution.retry_backoff += at.retry_backoff;
                    s.attribution.blocked += at.blocked;
                    s.attribution.transit += at.transit;
                }
                Outcome::Killed { .. } => s.killed += 1,
                Outcome::Unroutable { .. } => s.unroutable += 1,
                Outcome::InFlight => s.in_flight += 1,
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftr_topo::{NodeId, PortId, VcId};

    fn ev(cycle: u64, kind: EventKind) -> TraceEvent {
        TraceEvent { cycle, kind }
    }

    /// Detection-layer events fold into dedicated counters without
    /// touching message accounting or raising anomalies.
    #[test]
    fn detection_events_fold_into_counters() {
        let mut book = JourneyBook::new();
        let n = NodeId(3);
        let p = PortId(1);
        book.fold_all(&[
            ev(8, EventKind::Heartbeat { node: n, port: p, pong: false }),
            ev(10, EventKind::Heartbeat { node: n, port: p, pong: true }),
            ev(16, EventKind::Suspect { node: n, port: p, misses: 1 }),
            ev(24, EventKind::Suspect { node: n, port: p, misses: 2 }),
            ev(24, EventKind::ControlDrop { node: n, port: p }),
            ev(32, EventKind::Alarm { node: n, port: p }),
        ]);
        assert_eq!(book.alarm_events(), 1);
        assert_eq!(book.control_drops(), 1);
        assert_eq!(book.orphans(), 0, "protocol events reference no message");
        assert!(book.anomalies().is_empty(), "{:?}", book.anomalies());
        let s = book.summary();
        assert_eq!((s.injected, s.delivered, s.in_flight), (0, 0, 0));
    }

    /// Hand-built trace: inject at 0, decide at 2 (src queue 2), wait 3
    /// cycles, acquire, decide downstream, deliver at 20.
    #[test]
    fn single_journey_attribution_balances() {
        let mut book = JourneyBook::new();
        let n0 = NodeId(0);
        let n1 = NodeId(1);
        let p = PortId(0);
        let v = VcId(0);
        let decide = |node, outcome| EventKind::RouteDecision {
            node,
            msg: 9,
            in_port: None,
            in_vc: v,
            outcome,
            steps: 3,
            misrouted: false,
        };
        book.fold_all(&[
            ev(0, EventKind::Inject { msg: 9, src: n0, dst: n1, len_flits: 4 }),
            ev(2, decide(n0, ftr_obs::RouteOutcome::Wait)),
            ev(2, EventKind::RouteWait { node: n0, msg: 9, wants: vec![(p, v)] }),
            ev(3, EventKind::RouteWait { node: n0, msg: 9, wants: vec![(p, v)] }),
            ev(4, EventKind::VcStall { node: n0, msg: 9, port: p, vc: v }),
            ev(5, EventKind::VcAcquire { node: n0, msg: 9, port: p, vc: v }),
            ev(8, decide(n1, ftr_obs::RouteOutcome::Deliver)),
            ev(12, EventKind::VcRelease { node: n0, msg: 9, port: p, vc: v }),
            ev(20, EventKind::Deliver { node: n1, msg: 9 }),
        ]);
        assert_eq!(book.orphans(), 0);
        assert!(book.anomalies().is_empty(), "{:?}", book.anomalies());

        let j = &book.journeys()[&9];
        assert_eq!(j.latency(), Some(20));
        assert_eq!(j.hops(), Some(1));
        assert_eq!(j.retries(), 0);
        let at = j.attribution().unwrap();
        assert_eq!(at.total, 20);
        assert_eq!(at.src_queue, 2);
        assert_eq!(at.blocked, 3);
        assert_eq!(at.retry_backoff, 0);
        assert_eq!(at.transit, 15);
        assert_eq!(at.src_queue + at.blocked + at.retry_backoff + at.transit, at.total);

        let ch = book.channels()[&(0, 0, 0)];
        assert_eq!(ch.acquires, 1);
        assert_eq!(ch.busy_cycles, 7); // 5 → 12
        assert_eq!(ch.stalled_cycles, 3);

        let s = book.summary();
        assert_eq!((s.injected, s.delivered, s.in_flight), (1, 1, 0));
        assert_eq!(s.steps.count, 2);
        assert_eq!(s.steps.sum, 6);
    }

    /// Kill → retry → deliver: backoff window attributed, final outcome
    /// delivered, hops counted from the final attempt only.
    #[test]
    fn retried_journey_tracks_attempts_and_backoff() {
        let mut book = JourneyBook::new();
        let n0 = NodeId(0);
        let p = PortId(1);
        let v = VcId(0);
        let d = |cycle, node| {
            ev(
                cycle,
                EventKind::RouteDecision {
                    node,
                    msg: 4,
                    in_port: None,
                    in_vc: v,
                    outcome: ftr_obs::RouteOutcome::Routed(p, v),
                    steps: 1,
                    misrouted: false,
                },
            )
        };
        book.fold_all(&[
            ev(0, EventKind::Inject { msg: 4, src: n0, dst: NodeId(2), len_flits: 4 }),
            d(1, n0),
            ev(1, EventKind::VcAcquire { node: n0, msg: 4, port: p, vc: v }),
            ev(6, EventKind::Kill { msg: 4 }), // rip: channel closed with no release
            ev(38, EventKind::Retry { msg: 4, attempt: 2 }),
            d(40, n0),
            ev(40, EventKind::VcAcquire { node: n0, msg: 4, port: p, vc: v }),
            d(43, NodeId(1)),
            ev(44, EventKind::VcRelease { node: n0, msg: 4, port: p, vc: v }),
            ev(50, EventKind::Deliver { node: NodeId(2), msg: 4 }),
        ]);
        let j = &book.journeys()[&4];
        assert_eq!(j.attempts.len(), 2);
        assert_eq!(j.retries(), 1);
        assert_eq!(j.outcome, Outcome::Delivered { node: 2, cycle: 50 });
        assert_eq!(j.latency(), Some(50)); // original inject baseline
        assert_eq!(j.hops(), Some(1)); // final attempt only
        let at = j.attribution().unwrap();
        assert_eq!(at.retry_backoff, 32); // kill@6 → retry@38
        assert_eq!(at.src_queue, 1 + 2); // 0→1, 38→40
        assert_eq!(at.src_queue + at.blocked + at.retry_backoff + at.transit, at.total);
        // both attempts' acquires hit the channel; the kill closed 1→6
        let ch = book.channels()[&(0, 1, 0)];
        assert_eq!(ch.acquires, 2);
        assert_eq!(ch.busy_cycles, (6 - 1) + (44 - 40));
        let s = book.summary();
        assert_eq!((s.delivered, s.killed, s.retried), (1, 0, 1));
    }

    /// A kill with no subsequent retry is the final outcome — including
    /// the engine's silent-abandonment path, which terminates without a
    /// new event.
    #[test]
    fn final_kill_without_retry_is_terminal() {
        let mut book = JourneyBook::new();
        book.fold_all(&[
            ev(0, EventKind::Inject { msg: 1, src: NodeId(0), dst: NodeId(3), len_flits: 4 }),
            ev(5, EventKind::Kill { msg: 1 }),
            ev(0, EventKind::Inject { msg: 2, src: NodeId(0), dst: NodeId(3), len_flits: 4 }),
            ev(6, EventKind::Unroutable { msg: 2 }),
        ]);
        let s = book.summary();
        assert_eq!((s.killed, s.unroutable, s.delivered, s.in_flight), (1, 1, 0, 0));
    }

    #[test]
    fn orphan_events_are_counted_not_fatal() {
        let mut book = JourneyBook::new();
        book.fold(&ev(3, EventKind::Deliver { node: NodeId(1), msg: 77 }));
        book.fold(&ev(
            4,
            EventKind::VcStall { node: NodeId(1), msg: 77, port: PortId(0), vc: VcId(0) },
        ));
        assert_eq!(book.orphans(), 2);
        assert_eq!(book.summary().injected, 0);
    }
}
