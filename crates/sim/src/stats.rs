//! Simulation statistics: latency, throughput, routing-decision overhead.

use crate::flit::MessageId;
use ftr_topo::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-message bookkeeping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MsgMeta {
    /// Cycle the message was handed to the source node (the *first*
    /// attempt when the retry policy re-injects — end-to-end latency spans
    /// all attempts).
    pub inject_cycle: u64,
    /// Source node (needed to re-inject on retry).
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Length in flits.
    pub len_flits: u32,
    /// Whether it belongs to the measurement window.
    pub measured: bool,
    /// Hops recorded when the head arrived (set at delivery).
    pub hops: u32,
    /// Minimal distance in the fault-free topology (dilation baseline).
    pub min_dist: u32,
    /// Injection attempts so far (1 = original injection).
    pub attempts: u32,
}

/// Online mean/min/max accumulator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Accum {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Minimum (0 if empty).
    pub min: u64,
    /// Maximum.
    pub max: u64,
}

impl Accum {
    /// Adds a sample.
    pub fn add(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Aggregated results of one simulation.
///
/// `PartialEq` compares every field including the in-flight bookkeeping —
/// the lockstep differential tests use it to prove the active-set and
/// dense-scan step paths bit-identical.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimStats {
    /// Messages handed to source nodes.
    pub injected_msgs: u64,
    /// Messages fully delivered (tail ejected).
    pub delivered_msgs: u64,
    /// Measured messages delivered.
    pub measured_delivered: u64,
    /// Flits of measured messages delivered.
    pub measured_flits: u64,
    /// Messages killed by dynamic faults (ripped worms).
    pub killed_msgs: u64,
    /// Messages the algorithm declared unroutable (condition-3 violations).
    pub unroutable_msgs: u64,
    /// Re-injections performed by the retry policy (attempt-level count; a
    /// message retried twice contributes 2).
    pub retried_msgs: u64,
    /// Messages the retry policy gave up on (attempts exhausted or an
    /// endpoint dead at retry time). Every abandoned message is also
    /// counted in `killed_msgs`/`unroutable_msgs` by its final cause.
    pub abandoned_msgs: u64,
    /// Injections rejected at `send` because an endpoint was faulty (never
    /// entered the network; excluded from `injected_msgs`).
    pub rejected_sends: u64,
    /// Flits of still-live messages caught in the output register of a
    /// link that died without the fault injector ripping their worm. Each
    /// such message is killed through the normal kill path (counted in
    /// `killed_msgs`, `Kill` trace event) instead of leaking; a non-zero
    /// value flags a fault injector that missed a worm.
    pub flits_dropped_on_dead_link: u64,
    /// Latency of measured messages (inject → tail ejected), cycles.
    pub latency: Accum,
    /// Hops of measured messages.
    pub hops: Accum,
    /// Path dilation numerator: sum of (hops - min_dist) over measured.
    pub excess_hops: u64,
    /// Latency of measured messages that stayed on a minimal path.
    pub latency_direct: Accum,
    /// Latency of measured messages that were detoured (hops > minimal).
    pub latency_detoured: Accum,
    /// Rule-interpretation steps per routing decision.
    pub decision_steps: Accum,
    /// Control-plane messages exchanged (fault propagation traffic).
    pub control_msgs: u64,
    /// Control-plane messages discarded on unusable links — at send time
    /// or between send and their next-cycle delivery.
    pub control_dropped: u64,
    /// Deadlock detected by the watchdog.
    pub deadlock: bool,
    /// Cycles in the measurement window.
    pub measured_cycles: u64,
    /// Number of nodes (for throughput normalisation).
    pub num_nodes: usize,
    /// Per-message bookkeeping (in flight and historical).
    meta: HashMap<MessageId, MsgMeta>,
}

impl SimStats {
    /// Fresh stats for a network of `num_nodes` nodes.
    pub fn for_nodes(num_nodes: usize) -> Self {
        SimStats { num_nodes, ..Default::default() }
    }

    /// Registers an injected message.
    pub fn on_inject(&mut self, id: MessageId, meta: MsgMeta) {
        self.injected_msgs += 1;
        self.meta.insert(id, meta);
    }

    /// Records the hop count observed when a head flit reaches its
    /// destination.
    pub fn on_head_arrival(&mut self, id: MessageId, hops: u32) {
        if let Some(m) = self.meta.get_mut(&id) {
            m.hops = hops;
        }
    }

    /// Registers a completed delivery (tail ejected) at `cycle`. Returns
    /// the message's bookkeeping so callers (the network's observability
    /// hooks) can derive latency and dilation without double-tracking.
    pub fn on_deliver(&mut self, id: MessageId, cycle: u64) -> Option<MsgMeta> {
        self.delivered_msgs += 1;
        let meta = self.meta.remove(&id);
        if let Some(m) = meta {
            if m.measured {
                self.measured_delivered += 1;
                self.measured_flits += m.len_flits as u64;
                let lat = cycle - m.inject_cycle;
                self.latency.add(lat);
                if m.hops > m.min_dist {
                    self.latency_detoured.add(lat);
                } else {
                    self.latency_direct.add(lat);
                }
                self.hops.add(m.hops as u64);
                self.excess_hops += (m.hops.saturating_sub(m.min_dist)) as u64;
            }
        }
        meta
    }

    /// Registers a killed message.
    pub fn on_kill(&mut self, id: MessageId) {
        self.killed_msgs += 1;
        self.meta.remove(&id);
    }

    /// Registers a retry re-injection: the message stays in flight (same
    /// id, same first-attempt `inject_cycle`) with one more attempt on its
    /// ledger.
    pub fn on_retry(&mut self, id: MessageId) {
        self.retried_msgs += 1;
        if let Some(m) = self.meta.get_mut(&id) {
            m.attempts += 1;
        }
    }

    /// Bookkeeping of an in-flight message (None once terminated).
    pub fn meta(&self, id: MessageId) -> Option<&MsgMeta> {
        self.meta.get(&id)
    }

    /// Registers an unroutable message.
    pub fn on_unroutable(&mut self, id: MessageId) {
        self.unroutable_msgs += 1;
        self.meta.remove(&id);
    }

    /// Messages injected but not yet delivered/killed.
    pub fn in_flight(&self) -> usize {
        self.meta.len()
    }

    /// Messages that terminated (delivered, killed, or unroutable).
    pub fn terminated(&self) -> u64 {
        self.delivered_msgs + self.killed_msgs + self.unroutable_msgs
    }

    /// The conservation invariant every simulation must maintain:
    /// `delivered + killed + unroutable + in_flight == injected`.
    /// A violation means a message leaked or was double-counted.
    pub fn accounting_balanced(&self) -> bool {
        self.terminated() + self.in_flight() as u64 == self.injected_msgs
    }

    /// True while a message is still tracked (injected, not terminated).
    pub fn tracks(&self, id: MessageId) -> bool {
        self.meta.contains_key(&id)
    }

    /// Ids of all in-flight messages (diagnostics).
    pub fn in_flight_ids(&self) -> Vec<MessageId> {
        let mut v: Vec<MessageId> = self.meta.keys().copied().collect();
        v.sort();
        v
    }

    /// Accepted throughput in flits/node/cycle over the measurement window.
    pub fn throughput(&self) -> f64 {
        if self.measured_cycles == 0 || self.num_nodes == 0 {
            0.0
        } else {
            self.measured_flits as f64 / (self.measured_cycles as f64 * self.num_nodes as f64)
        }
    }

    /// Mean path dilation in extra hops per measured message.
    pub fn mean_excess_hops(&self) -> f64 {
        if self.hops.count == 0 {
            0.0
        } else {
            self.excess_hops as f64 / self.hops.count as f64
        }
    }

    /// Fraction of injected messages eventually delivered (of those that
    /// terminated).
    pub fn delivery_ratio(&self) -> f64 {
        let done = self.delivered_msgs + self.killed_msgs + self.unroutable_msgs;
        if done == 0 {
            0.0
        } else {
            self.delivered_msgs as f64 / done as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accum_basics() {
        let mut a = Accum::default();
        assert_eq!(a.mean(), 0.0);
        a.add(10);
        a.add(20);
        a.add(3);
        assert_eq!(a.count, 3);
        assert_eq!(a.min, 3);
        assert_eq!(a.max, 20);
        assert!((a.mean() - 11.0).abs() < 1e-9);
    }

    #[test]
    fn lifecycle_accounting() {
        let mut s = SimStats { num_nodes: 4, measured_cycles: 100, ..Default::default() };
        let meta = MsgMeta {
            inject_cycle: 5,
            src: NodeId(0),
            dst: NodeId(3),
            len_flits: 4,
            measured: true,
            hops: 0,
            min_dist: 2,
            attempts: 1,
        };
        s.on_inject(MessageId(1), meta);
        s.on_inject(MessageId(2), meta);
        s.on_inject(MessageId(3), meta);
        assert_eq!(s.in_flight(), 3);
        s.on_head_arrival(MessageId(1), 3);
        s.on_deliver(MessageId(1), 25);
        s.on_kill(MessageId(2));
        s.on_unroutable(MessageId(3));
        assert_eq!(s.in_flight(), 0);
        assert_eq!(s.latency.mean(), 20.0);
        assert_eq!(s.excess_hops, 1);
        assert!((s.delivery_ratio() - 1.0 / 3.0).abs() < 1e-9);
        assert!((s.throughput() - 4.0 / 400.0).abs() < 1e-9);
    }

    #[test]
    fn accounting_invariant_holds_through_lifecycle() {
        let mut s = SimStats::default();
        let meta = MsgMeta {
            inject_cycle: 0,
            src: NodeId(0),
            dst: NodeId(1),
            len_flits: 1,
            measured: false,
            hops: 0,
            min_dist: 1,
            attempts: 1,
        };
        assert!(s.accounting_balanced(), "empty stats balance");
        for i in 0..4 {
            s.on_inject(MessageId(i), meta);
            assert!(s.accounting_balanced(), "after inject {i}");
        }
        s.on_deliver(MessageId(0), 10);
        assert!(s.accounting_balanced());
        s.on_kill(MessageId(1));
        assert!(s.accounting_balanced());
        s.on_unroutable(MessageId(2));
        assert!(s.accounting_balanced());
        assert_eq!(s.terminated(), 3);
        assert_eq!(s.in_flight(), 1);
        // a double-termination would break the balance
        s.on_kill(MessageId(0));
        assert!(!s.accounting_balanced(), "double-count must be visible");
    }

    #[test]
    fn unmeasured_messages_skip_latency() {
        let mut s = SimStats::default();
        s.on_inject(
            MessageId(9),
            MsgMeta {
                inject_cycle: 0,
                src: NodeId(0),
                dst: NodeId(1),
                len_flits: 4,
                measured: false,
                hops: 0,
                min_dist: 1,
                attempts: 1,
            },
        );
        s.on_deliver(MessageId(9), 50);
        assert_eq!(s.delivered_msgs, 1);
        assert_eq!(s.measured_delivered, 0);
        assert_eq!(s.latency.count, 0);
    }

    #[test]
    fn retry_keeps_message_in_flight_and_latency_spans_attempts() {
        let mut s = SimStats::default();
        s.on_inject(
            MessageId(1),
            MsgMeta {
                inject_cycle: 10,
                src: NodeId(0),
                dst: NodeId(5),
                len_flits: 4,
                measured: true,
                hops: 0,
                min_dist: 2,
                attempts: 1,
            },
        );
        // worm ripped, retry scheduled: no termination, accounting still balanced
        s.on_retry(MessageId(1));
        assert!(s.accounting_balanced());
        assert_eq!(s.retried_msgs, 1);
        assert_eq!(s.meta(MessageId(1)).unwrap().attempts, 2);
        assert_eq!(s.in_flight(), 1);
        // delivered on the second attempt: latency runs from the FIRST inject
        s.on_head_arrival(MessageId(1), 2);
        s.on_deliver(MessageId(1), 110);
        assert_eq!(s.latency.mean(), 100.0);
        assert!(s.accounting_balanced());
        assert_eq!(s.delivery_ratio(), 1.0);
    }
}
