//! The cycle-level network engine.
//!
//! Drives the per-node routers of [`crate::router`] under the control of a
//! [`RoutingAlgorithm`]: link traversal, injection, routing decisions with
//! configurable latency, switch allocation (round-robin), ejection,
//! credit-based flow control, control-plane propagation of fault state, and
//! dynamic fault injection with worm-kill semantics (messages ripped by a
//! fault are removed network-wide and counted, standing in for the
//! higher-level recovery protocols the paper's §2.1 mentions).

#![allow(clippy::needless_range_loop)] // index loops mirror the hardware structure

use crate::flit::{Flit, FlitKind, Header, MessageId};
use crate::plan::{FaultAction, FaultPlan};
use crate::router::{DecisionPhase, RouteState, RouterNode};
use crate::routing::{ControlMsg, NodeController, RouterView, RoutingAlgorithm, Verdict};
use crate::stats::{MsgMeta, SimStats};
use ftr_obs::{
    Counter, EventKind, Histogram, MetricsRegistry, RouteOutcome, TraceEvent, TraceSink,
};
use ftr_topo::{FaultSet, NodeId, PortId, Topology, VcId};
use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Buffer depth per virtual channel (flits).
    pub buffer_depth: u32,
    /// Cycles one rule-interpretation step costs (the §4.3 delay model:
    /// wiring + 2 FCFB + memory access collapses to a per-step latency).
    pub decision_cycles_per_step: u32,
    /// Cycles without flit movement (while messages are in flight) that
    /// trigger the deadlock watchdog.
    pub deadlock_threshold: u64,
    /// Favour misrouted messages in switch allocation (§3: compensate "the
    /// double disadvantage of the longer path and higher loaded links").
    pub prioritize_misrouted: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            buffer_depth: 4,
            decision_cycles_per_step: 1,
            deadlock_threshold: 2_000,
            prioritize_misrouted: false,
        }
    }
}

/// A pending control-plane delivery.
struct ControlDelivery {
    due: u64,
    to: NodeId,
    from_port: PortId,
    payload: Vec<i64>,
}

/// Reusable per-cycle scratch buffers.
///
/// Every phase of [`Network::step`] used to heap-allocate fresh working
/// storage each cycle (the unroutable set, credit-return list, per-node
/// `used` flags, the due control deliveries); keeping them on the network
/// and clearing instead of dropping makes the per-cycle fixed cost
/// allocation-free.
#[derive(Default)]
struct StepScratch {
    /// The working set of the running step (node indices, ascending).
    cur: Vec<u32>,
    /// Messages declared unroutable by this cycle's routing decisions.
    unroutable: HashSet<MessageId>,
    /// Live messages whose flit was caught on a just-dead link.
    dropped: HashSet<MessageId>,
    /// Credits to return upstream after switch allocation.
    credit_returns: Vec<(NodeId, PortId, usize)>,
    /// Per-input-port "moved a flit this cycle" flags (reused per node).
    used: Vec<bool>,
    /// Control deliveries due this cycle.
    due: Vec<ControlDelivery>,
}

/// Why [`Network::send`] rejected an injection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendError {
    /// The source node is faulty.
    FaultySource,
    /// The destination node is faulty (assumption iii: no messages to
    /// faulty destinations).
    FaultyDestination,
    /// `src == dst` — self-messages never enter the network.
    SelfMessage,
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendError::FaultySource => write!(f, "source node is faulty"),
            SendError::FaultyDestination => write!(f, "destination node is faulty"),
            SendError::SelfMessage => write!(f, "self-messages never enter the network"),
        }
    }
}

impl std::error::Error for SendError {}

/// Source-retransmission policy: killed or unroutable messages are
/// re-injected at their source after a backoff, up to an attempt budget —
/// the end-to-end recovery protocol §2.1 assumes above the router.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total injection attempts allowed per message (1 = no retries).
    pub max_attempts: u32,
    /// Cycles between a worm being ripped and its re-injection.
    pub backoff_cycles: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 4, backoff_cycles: 32 }
    }
}

/// A killed message waiting out its retry backoff.
struct RetryEntry {
    due: u64,
    id: MessageId,
    /// Final-termination cause if the retry is abandoned.
    unroutable: bool,
}

/// Validation failures of [`NetworkBuilder::build`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// `buffer_depth` must be at least one flit.
    ZeroBufferDepth,
    /// The deadlock watchdog threshold must be non-zero.
    ZeroDeadlockThreshold,
    /// The routing algorithm must request at least one virtual channel.
    NoVirtualChannels,
    /// The topology has no nodes.
    EmptyTopology,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::ZeroBufferDepth => write!(f, "buffer_depth must be >= 1 flit"),
            BuildError::ZeroDeadlockThreshold => write!(f, "deadlock_threshold must be >= 1"),
            BuildError::NoVirtualChannels => {
                write!(f, "routing algorithm must use >= 1 virtual channel")
            }
            BuildError::EmptyTopology => write!(f, "topology has no nodes"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Pre-resolved metric handles — looked up once at build so the hot path
/// never touches the registry's name maps.
struct SimMetrics {
    registry: Arc<MetricsRegistry>,
    injected: Counter,
    delivered: Counter,
    killed: Counter,
    unroutable: Counter,
    retried: Counter,
    abandoned: Counter,
    rejected_sends: Counter,
    control_msgs: Counter,
    latency: Histogram,
    hops: Histogram,
    excess_hops: Histogram,
    decision_steps: Histogram,
    buffer_occupancy: Histogram,
}

impl SimMetrics {
    fn new(registry: Arc<MetricsRegistry>) -> Self {
        SimMetrics {
            injected: registry.counter("sim.injected"),
            delivered: registry.counter("sim.delivered"),
            killed: registry.counter("sim.killed"),
            unroutable: registry.counter("sim.unroutable"),
            retried: registry.counter("sim.retried"),
            abandoned: registry.counter("sim.abandoned"),
            rejected_sends: registry.counter("sim.rejected_sends"),
            control_msgs: registry.counter("sim.control_msgs"),
            latency: registry.histogram("sim.latency"),
            hops: registry.histogram("sim.hops"),
            excess_hops: registry.histogram("sim.excess_hops"),
            decision_steps: registry.histogram("sim.decision_steps"),
            buffer_occupancy: registry.histogram("sim.buffer_occupancy"),
            registry,
        }
    }
}

/// How often (in cycles) per-node buffer occupancy is sampled into the
/// metrics registry when one is attached.
const OCCUPANCY_SAMPLE_PERIOD: u64 = 64;

/// Fluent, validated construction of a [`Network`] — the instrumentation
/// seam of the observability layer.
///
/// ```
/// use ftr_sim::{NetworkBuilder, routing::*};
/// # use ftr_sim::flit::Header;
/// use ftr_topo::{Mesh2D, NodeId, PortId, Topology, VcId};
/// use std::sync::Arc;
/// # struct Stay;
/// # struct StayCtl;
/// # impl RoutingAlgorithm for Stay {
/// #     fn name(&self) -> String { "stay".into() }
/// #     fn num_vcs(&self) -> usize { 1 }
/// #     fn controller(&self, _t: &dyn Topology, _n: NodeId) -> Box<dyn NodeController> {
/// #         Box::new(StayCtl)
/// #     }
/// # }
/// # impl NodeController for StayCtl {
/// #     fn route(&mut self, _v: &RouterView<'_>, _h: &mut Header,
/// #              _ip: Option<PortId>, _iv: VcId) -> Decision {
/// #         Decision::new(Verdict::Wait, 1)
/// #     }
/// # }
/// let sink = Arc::new(ftr_obs::RingSink::new(1024));
/// let net = NetworkBuilder::new(Arc::new(Mesh2D::new(4, 4)))
///     .buffer_depth(8)
///     .trace(sink.clone())
///     .build(&Stay)
///     .expect("valid configuration");
/// assert_eq!(net.cycle(), 0);
/// ```
pub struct NetworkBuilder {
    topo: Arc<dyn Topology>,
    cfg: SimConfig,
    sink: Option<Arc<dyn TraceSink>>,
    metrics: Option<Arc<MetricsRegistry>>,
    retry: Option<RetryPolicy>,
    plan: Option<FaultPlan>,
}

impl NetworkBuilder {
    /// Starts a builder over `topo` with the default [`SimConfig`].
    pub fn new(topo: Arc<dyn Topology>) -> Self {
        NetworkBuilder {
            topo,
            cfg: SimConfig::default(),
            sink: None,
            metrics: None,
            retry: None,
            plan: None,
        }
    }

    /// Replaces the whole engine configuration at once.
    pub fn config(mut self, cfg: SimConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Buffer depth per virtual channel, in flits.
    pub fn buffer_depth(mut self, flits: u32) -> Self {
        self.cfg.buffer_depth = flits;
        self
    }

    /// Cycles one rule-interpretation step costs (§4.3 delay model).
    pub fn decision_cycles_per_step(mut self, cycles: u32) -> Self {
        self.cfg.decision_cycles_per_step = cycles;
        self
    }

    /// Idle cycles (with messages in flight) before the deadlock watchdog
    /// fires.
    pub fn deadlock_threshold(mut self, cycles: u64) -> Self {
        self.cfg.deadlock_threshold = cycles;
        self
    }

    /// Favour fault-misrouted messages in switch allocation (§3).
    pub fn prioritize_misrouted(mut self, on: bool) -> Self {
        self.cfg.prioritize_misrouted = on;
        self
    }

    /// Attaches a trace sink. With no sink, the network never constructs
    /// a [`TraceEvent`].
    pub fn trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Attaches a metrics registry; the network records its counters and
    /// histograms under `sim.*` names.
    pub fn metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Enables source retransmission of killed/unroutable messages.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Attaches a scripted fault plan the network executes cycle by cycle.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Validates the configuration and builds the network running `algo`
    /// on every node.
    pub fn build(self, algo: &dyn RoutingAlgorithm) -> Result<Network, BuildError> {
        if self.cfg.buffer_depth == 0 {
            return Err(BuildError::ZeroBufferDepth);
        }
        if self.cfg.deadlock_threshold == 0 {
            return Err(BuildError::ZeroDeadlockThreshold);
        }
        let vcs = algo.num_vcs();
        if vcs == 0 {
            return Err(BuildError::NoVirtualChannels);
        }
        let n = self.topo.num_nodes();
        if n == 0 {
            return Err(BuildError::EmptyTopology);
        }
        let degree = self.topo.degree();
        let cfg = self.cfg;
        let nodes = (0..n).map(|_| RouterNode::new(degree, vcs, cfg.buffer_depth)).collect();
        let ctrls = (0..n).map(|i| algo.controller(self.topo.as_ref(), NodeId(i as u32))).collect();
        let stats = SimStats::for_nodes(n);
        Ok(Network {
            topo: self.topo,
            cfg,
            vcs,
            faults: FaultSet::new(),
            nodes,
            ctrls,
            control: VecDeque::new(),
            cycle: 0,
            next_msg: 0,
            last_move: 0,
            measuring: false,
            stats,
            sink: self.sink,
            metrics: self.metrics.map(SimMetrics::new),
            retry: self.retry,
            retries: VecDeque::new(),
            plan: self.plan,
            active_mask: vec![false; n],
            active_list: Vec::new(),
            dense_reference: false,
            last_moved: false,
            scratch: StepScratch::default(),
        })
    }
}

/// The simulated network.
pub struct Network {
    topo: Arc<dyn Topology>,
    cfg: SimConfig,
    vcs: usize,
    faults: FaultSet,
    nodes: Vec<RouterNode>,
    ctrls: Vec<Box<dyn NodeController>>,
    control: VecDeque<ControlDelivery>,
    cycle: u64,
    next_msg: u64,
    last_move: u64,
    measuring: bool,
    /// Aggregated statistics.
    pub stats: SimStats,
    sink: Option<Arc<dyn TraceSink>>,
    metrics: Option<SimMetrics>,
    retry: Option<RetryPolicy>,
    retries: VecDeque<RetryEntry>,
    plan: Option<FaultPlan>,
    /// Active-set scheduling: `active_mask[n]` ⟺ node `n` is in
    /// `active_list` ⟺ (between steps) node `n` has flit-bearing work.
    /// Every flit source (injection, link traversal, retry re-injection)
    /// marks its node; `step` iterates only the marked set.
    active_mask: Vec<bool>,
    active_list: Vec<u32>,
    /// Retained dense-scan reference path: iterate every node in every
    /// phase, exactly as the pre-active-set engine did. Differential tests
    /// run it in lockstep against the active-set path.
    dense_reference: bool,
    /// Whether the most recent `step` moved any flit.
    last_moved: bool,
    scratch: StepScratch,
}

impl Network {
    /// Builds a fault-free network running `algo` on every node.
    #[deprecated(since = "0.1.0", note = "use NetworkBuilder (Network::builder) instead")]
    pub fn new(topo: Arc<dyn Topology>, algo: &dyn RoutingAlgorithm, cfg: SimConfig) -> Self {
        NetworkBuilder::new(topo).config(cfg).build(algo).expect("legacy Network::new config")
    }

    /// Starts a [`NetworkBuilder`] over `topo`.
    pub fn builder(topo: Arc<dyn Topology>) -> NetworkBuilder {
        NetworkBuilder::new(topo)
    }

    /// Emits a trace event; the closure only runs when a sink is attached
    /// (zero-cost-when-disabled contract).
    #[inline]
    fn emit(&self, kind: impl FnOnce() -> EventKind) {
        if let Some(sink) = &self.sink {
            sink.record(&TraceEvent { cycle: self.cycle, kind: kind() });
        }
    }

    /// The attached trace sink, if any.
    pub fn trace_sink(&self) -> Option<&Arc<dyn TraceSink>> {
        self.sink.as_ref()
    }

    /// The attached metrics registry, if any.
    pub fn metrics_registry(&self) -> Option<&Arc<MetricsRegistry>> {
        self.metrics.as_ref().map(|m| &m.registry)
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Switches `step` onto the dense-scan reference path (every phase
    /// iterates every node, as the pre-active-set engine did). The two
    /// paths are observably identical — same `SimStats`, same trace-event
    /// stream, same per-cycle movement — which the lockstep differential
    /// tests enforce; the dense path exists as that test's oracle and as a
    /// debugging fallback. Switching is safe at any cycle boundary.
    pub fn set_dense_reference(&mut self, on: bool) {
        self.dense_reference = on;
    }

    /// Whether the most recent [`Network::step`] moved any flit (link
    /// traversal, injection, ejection or switch). Differential tests
    /// compare this per cycle across step paths.
    pub fn last_step_moved(&self) -> bool {
        self.last_moved
    }

    /// Nodes currently in the active set (ascending order; diagnostics).
    pub fn active_nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<u32> = self.active_list.clone();
        v.sort_unstable();
        v.into_iter().map(NodeId).collect()
    }

    /// Marks a node as having flit-bearing work. Idempotent; every path
    /// that hands a node a flit (injection, retry re-injection, link
    /// traversal) must call this or the active-set scheduler would strand
    /// the flit.
    #[inline]
    fn mark_active(&mut self, ni: usize) {
        if !self.active_mask[ni] {
            self.active_mask[ni] = true;
            self.active_list.push(ni as u32);
        }
    }

    /// The topology.
    pub fn topo(&self) -> &dyn Topology {
        self.topo.as_ref()
    }

    /// Ground-truth fault set.
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// Marks subsequently injected messages as part of the measurement
    /// window (and records the window length).
    pub fn set_measuring(&mut self, on: bool) {
        self.measuring = on;
    }

    /// Adds to the measured-cycles count used for throughput.
    pub fn add_measured_cycles(&mut self, c: u64) {
        self.stats.measured_cycles += c;
    }

    /// Injects a message at `src` for `dst`.
    ///
    /// An injection involving a faulty endpoint — a scheduled send racing a
    /// dynamic fault — is rejected with a [`SendError`] and counted in
    /// [`SimStats::rejected_sends`] instead of aborting the run (assumption
    /// iii: no messages to faulty nodes). Self-messages are a programming
    /// error and additionally panic in debug builds.
    pub fn send(
        &mut self,
        src: NodeId,
        dst: NodeId,
        len_flits: u32,
    ) -> Result<MessageId, SendError> {
        if src == dst {
            debug_assert!(src != dst, "self-messages never enter the network");
            self.stats.rejected_sends += 1;
            return Err(SendError::SelfMessage);
        }
        let err = if self.faults.node_faulty(src) {
            Some(SendError::FaultySource)
        } else if self.faults.node_faulty(dst) {
            Some(SendError::FaultyDestination)
        } else {
            None
        };
        if let Some(e) = err {
            self.stats.rejected_sends += 1;
            self.emit(|| EventKind::SendRejected { src, dst });
            if let Some(m) = &self.metrics {
                m.rejected_sends.inc();
            }
            return Err(e);
        }
        let id = MessageId(self.next_msg);
        self.next_msg += 1;
        let header = Header::new(id, src, dst, len_flits);
        self.stats.on_inject(
            id,
            MsgMeta {
                inject_cycle: self.cycle,
                src,
                dst,
                len_flits: len_flits.max(1),
                measured: self.measuring,
                hops: 0,
                min_dist: self.topo.min_distance(src, dst),
                attempts: 1,
            },
        );
        self.emit(|| EventKind::Inject { msg: id.0, src, dst, len_flits });
        if let Some(m) = &self.metrics {
            m.injected.inc();
        }
        self.nodes[src.idx()].staging.extend(Flit::sequence(header));
        self.mark_active(src.idx());
        Ok(id)
    }

    /// Attaches (or replaces) a scripted fault plan mid-run; actions whose
    /// cycle already passed fire on the next step.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.plan = Some(plan);
    }

    /// Enables, replaces or (with `None`) disables source retransmission.
    /// Messages already waiting out a backoff keep their schedule.
    pub fn set_retry_policy(&mut self, policy: Option<RetryPolicy>) {
        self.retry = policy;
    }

    /// The active retry policy, if any.
    pub fn retry_policy(&self) -> Option<RetryPolicy> {
        self.retry
    }

    /// Messages in flight (injected, not yet terminated).
    pub fn in_flight(&self) -> usize {
        self.stats.in_flight()
    }

    // ------------------------------------------------------------ faults

    /// Fails the link leaving `n` through `p` at the current cycle: rips
    /// the worms spanning it, notifies both endpoint controllers, and
    /// starts control-plane propagation.
    pub fn inject_link_fault(&mut self, n: NodeId, p: PortId) {
        let Some(m) = self.topo.neighbor(n, p) else { return };
        let q = self.topo.port_towards(m, n).expect("reverse port");
        self.faults.fail_link(self.topo.as_ref(), n, p);
        self.emit(|| EventKind::LinkFault { node: n, port: p });

        let mut dead: HashSet<MessageId> = HashSet::new();
        for (node, port) in [(n, p), (m, q)] {
            if let Some((_, f)) = &self.nodes[node.idx()].out_reg[port.idx()] {
                dead.insert(f.msg);
            }
            // messages with flits in the FIFO fed by the dead link are
            // still streaming over it unless their tail already crossed
            for vc in &self.nodes[node.idx()].inputs[port.idx()] {
                for f in &vc.fifo {
                    let crossed = vc.fifo.iter().any(|g| {
                        g.msg == f.msg
                            && (matches!(g.kind, FlitKind::Tail)
                                || matches!(g.kind, FlitKind::Head(h) if h.len_flits <= 1))
                    });
                    if !crossed {
                        dead.insert(f.msg);
                    }
                }
            }
            // worms routed OUT across the dead link: the output-channel
            // owner tracks the holding message even when its flits are all
            // in flight elsewhere
            for o in &self.nodes[node.idx()].outputs[port.idx()] {
                if let Some(owner) = o.owner {
                    dead.insert(owner);
                }
            }
        }
        self.kill_messages(&dead, false);
        self.notify_fault(n, p);
        self.notify_fault(m, q);
    }

    /// Fails node `n`: rips every worm touching it, kills in-flight
    /// messages destined to it, and notifies all alive neighbours.
    pub fn inject_node_fault(&mut self, n: NodeId) {
        self.faults.fail_node(n);
        self.emit(|| EventKind::NodeFault { node: n });
        let mut dead: HashSet<MessageId> = HashSet::new();
        // everything buffered in the dead node
        for inputs in &self.nodes[n.idx()].inputs {
            for vc in inputs {
                for f in &vc.fifo {
                    dead.insert(f.msg);
                }
            }
        }
        for (_, f) in self.nodes[n.idx()].out_reg.iter().flatten() {
            dead.insert(f.msg);
        }
        for f in &self.nodes[n.idx()].staging {
            dead.insert(f.msg);
        }
        // worms at neighbours routed into the dead node (tracked by the
        // output-channel owners), flits mid-flight towards it, and messages
        // destined to it anywhere in the network
        for node in self.topo.nodes() {
            for (p, outs) in self.nodes[node.idx()].outputs.iter().enumerate() {
                if self.topo.neighbor(node, PortId(p as u8)) == Some(n) {
                    for o in outs {
                        if let Some(owner) = o.owner {
                            dead.insert(owner);
                        }
                    }
                    if let Some((_, f)) = &self.nodes[node.idx()].out_reg[p] {
                        dead.insert(f.msg);
                    }
                }
            }
            for inputs in &self.nodes[node.idx()].inputs {
                for vc in inputs {
                    for f in &vc.fifo {
                        if let Some(h) = f.header() {
                            if h.dst == n {
                                dead.insert(f.msg);
                            }
                        }
                    }
                }
            }
            for reg in self.nodes[node.idx()].out_reg.iter().flatten() {
                if let Some(h) = reg.1.header() {
                    if h.dst == n {
                        dead.insert(reg.1.msg);
                    }
                }
            }
            for f in &self.nodes[node.idx()].staging {
                if let Some(h) = f.header() {
                    if h.dst == n {
                        dead.insert(f.msg);
                    }
                }
            }
        }
        self.kill_messages(&dead, false);
        for (p, nb) in self.topo.neighbors(n) {
            if !self.faults.node_faulty(nb) {
                let q = self.topo.port_towards(nb, n).expect("reverse");
                self.notify_fault(nb, q);
            }
            let _ = p;
        }
    }

    /// Repairs the link leaving `n` through `p`: re-arms it in the fault
    /// set, emits a [`EventKind::LinkRepair`] and — when the link is
    /// actually usable again (both endpoints alive) — notifies both
    /// endpoint controllers through [`NodeController::on_repair`] so they
    /// can un-learn their monotone fault knowledge. No-op for unconnected
    /// ports and healthy links.
    pub fn repair_link(&mut self, n: NodeId, p: PortId) {
        let Some(m) = self.topo.neighbor(n, p) else { return };
        if !self.faults.link_faulty(self.topo.as_ref(), n, p) {
            return;
        }
        let Some(l) = self.topo.link(n, p) else { return };
        self.faults.repair_link(l);
        self.emit(|| EventKind::LinkRepair { node: n, port: p });
        if self.faults.link_usable(self.topo.as_ref(), n, p) {
            let q = self.topo.port_towards(m, n).expect("reverse port");
            self.notify_repair(n, p);
            self.notify_repair(m, q);
        }
    }

    /// Repairs node `n`: re-arms it with a fresh (rebooted) router and
    /// notifies its controller and every alive neighbour on each incident
    /// healthy link. The repaired node's controller keeps its accumulated
    /// state — algorithms reset it in [`NodeController::on_repair`].
    pub fn repair_node(&mut self, n: NodeId) {
        if !self.faults.node_faulty(n) {
            return;
        }
        self.faults.repair_node(n);
        self.emit(|| EventKind::NodeRepair { node: n });
        // the router hardware comes back empty: fresh buffers, credits and
        // allocation state (everything it held was killed at fault time)
        self.nodes[n.idx()] = RouterNode::new(self.topo.degree(), self.vcs, self.cfg.buffer_depth);
        self.recompute_credits_and_loads();
        for (p, nb) in self.topo.neighbors(n) {
            if self.faults.link_usable(self.topo.as_ref(), n, p) {
                let q = self.topo.port_towards(nb, n).expect("reverse");
                self.notify_repair(n, p);
                self.notify_repair(nb, q);
            }
        }
    }

    fn notify_repair(&mut self, node: NodeId, port: PortId) {
        if self.faults.node_faulty(node) {
            return;
        }
        let view_data = self.view_data(node);
        let view = view_data.view(node, self.cycle);
        let msgs = self.ctrls[node.idx()].on_repair(&view, port);
        self.enqueue_control(node, msgs);
    }

    /// Applies a whole static fault set (links then nodes), triggering the
    /// usual controller notifications and control-plane propagation.
    pub fn apply_fault_set(&mut self, fs: &FaultSet) {
        for l in fs.faulty_links().collect::<Vec<_>>() {
            self.inject_link_fault(l.node, l.port);
        }
        for n in fs.faulty_nodes().collect::<Vec<_>>() {
            self.inject_node_fault(n);
        }
    }

    /// Queries a controller's full routing relation under an idealised
    /// all-free view (used by deadlock and conditions analyses).
    pub fn query_relation(
        &mut self,
        n: NodeId,
        header: &Header,
        in_port: Option<PortId>,
        in_vc: VcId,
    ) -> Vec<(PortId, VcId)> {
        let degree = self.topo.degree();
        let mut out_free = vec![vec![true; self.vcs]; degree];
        let mut link_alive = vec![false; degree];
        for p in 0..degree {
            let alive = self.faults.link_usable(self.topo.as_ref(), n, PortId(p as u8));
            link_alive[p] = alive;
            if !alive {
                out_free[p] = vec![false; self.vcs];
            }
        }
        let out_load = vec![0u32; degree];
        let view = RouterView {
            node: n,
            cycle: self.cycle,
            out_free: &out_free,
            out_load: &out_load,
            link_alive: &link_alive,
        };
        self.ctrls[n.idx()].relation(&view, header, in_port, in_vc)
    }

    /// Output channels the controller would accept *right now* for a head
    /// it asked to wait: each live `(port, vc)` is probed under a
    /// synthetic view where exactly that channel is free, and kept when
    /// the controller grants it. Runs only while a trace sink is attached
    /// (the `RouteWait` wait-for edges); header mutations made by the
    /// probed decisions are discarded, so a controller whose `route` is a
    /// pure function of view + header — every in-tree algorithm — is
    /// unperturbed.
    fn probe_wants(
        &mut self,
        n: NodeId,
        header: &Header,
        in_port: Option<PortId>,
        in_vc: VcId,
    ) -> Vec<(PortId, VcId)> {
        let degree = self.topo.degree();
        let mut link_alive = vec![false; degree];
        for (p, alive) in link_alive.iter_mut().enumerate() {
            *alive = self.faults.link_usable(self.topo.as_ref(), n, PortId(p as u8));
        }
        let out_load = vec![0u32; degree];
        let mut out_free = vec![vec![false; self.vcs]; degree];
        let mut wants = Vec::new();
        for p in 0..degree {
            if !link_alive[p] {
                continue;
            }
            for v in 0..self.vcs {
                out_free[p][v] = true;
                let view = RouterView {
                    node: n,
                    cycle: self.cycle,
                    out_free: &out_free,
                    out_load: &out_load,
                    link_alive: &link_alive,
                };
                let mut h = *header;
                let dec = self.ctrls[n.idx()].route(&view, &mut h, in_port, in_vc);
                out_free[p][v] = false;
                if let Verdict::Route(rp, rv) = dec.verdict {
                    if rp.idx() == p && rv.idx() == v {
                        wants.push((PortId(p as u8), VcId(v as u8)));
                    }
                }
            }
        }
        wants
    }

    fn notify_fault(&mut self, node: NodeId, port: PortId) {
        if self.faults.node_faulty(node) {
            return;
        }
        let view_data = self.view_data(node);
        let view = view_data.view(node, self.cycle);
        let msgs = self.ctrls[node.idx()].on_fault(&view, port);
        self.enqueue_control(node, msgs);
    }

    fn enqueue_control(&mut self, from: NodeId, msgs: Vec<ControlMsg>) {
        for msg in msgs {
            if !self.faults.link_usable(self.topo.as_ref(), from, msg.port) {
                continue; // control messages need healthy links too
            }
            let to = self.topo.neighbor(from, msg.port).expect("usable link");
            let from_port = self.topo.port_towards(to, from).expect("reverse");
            self.stats.control_msgs += 1;
            self.emit(|| EventKind::ControlSend { from, to });
            if let Some(m) = &self.metrics {
                m.control_msgs.inc();
            }
            self.control.push_back(ControlDelivery {
                due: self.cycle + 1,
                to,
                from_port,
                payload: msg.payload,
            });
        }
    }

    /// Runs only the control plane until it goes quiet; returns the number
    /// of cycles it took, or `None` if `budget` was exhausted (E10
    /// settling-time experiment).
    pub fn settle_control(&mut self, budget: u64) -> Option<u64> {
        let start = self.cycle;
        while !self.control.is_empty() {
            if self.cycle - start >= budget {
                return None;
            }
            self.step();
        }
        let took = self.cycle - start;
        self.emit(|| EventKind::ControlSettled { cycles: took });
        Some(took)
    }

    /// Kills a set of messages network-wide (ripped worms / unroutable).
    fn kill_messages(&mut self, ids: &HashSet<MessageId>, unroutable: bool) {
        if ids.is_empty() {
            return;
        }
        for node in &mut self.nodes {
            node.staging.retain(|f| !ids.contains(&f.msg));
            let nports = node.inputs.len();
            for ip in 0..nports {
                for iv in 0..node.inputs[ip].len() {
                    // a route whose flits are all in flight is identified
                    // through the output-channel owner; otherwise through
                    // the FIFO front
                    let stale = match node.inputs[ip][iv].route {
                        RouteState::Out(p, v) => {
                            node.outputs[p.idx()][v.idx()].owner.is_some_and(|m| ids.contains(&m))
                        }
                        _ => false,
                    };
                    let vc = &mut node.inputs[ip][iv];
                    let front_dead = vc.fifo.front().is_some_and(|f| ids.contains(&f.msg));
                    vc.fifo.retain(|f| !ids.contains(&f.msg));
                    if front_dead || stale {
                        vc.reset_route();
                    }
                }
            }
            for outvcs in &mut node.outputs {
                for o in outvcs {
                    if o.owner.is_some_and(|m| ids.contains(&m)) {
                        o.owner = None;
                    }
                }
            }
            for reg in &mut node.out_reg {
                if reg.as_ref().is_some_and(|(_, f)| ids.contains(&f.msg)) {
                    *reg = None;
                }
            }
        }
        // id order, not HashSet order: trace events and retry scheduling
        // must not depend on per-instance hasher state (lockstep
        // differential tests compare event streams across two networks)
        let mut ordered: Vec<MessageId> = ids.iter().copied().collect();
        ordered.sort_unstable();
        for id in ordered {
            // retry policy: the ripped worm stays logically in flight (same
            // id, same first-attempt inject cycle) and re-enters at its
            // source after the backoff, as long as attempts remain
            let retryable = match (&self.retry, self.stats.meta(id)) {
                (Some(rp), Some(meta)) => meta.attempts < rp.max_attempts,
                _ => false,
            };
            if retryable {
                let backoff = self.retry.expect("checked").backoff_cycles.max(1);
                self.retries.push_back(RetryEntry { due: self.cycle + backoff, id, unroutable });
            }
            if unroutable {
                self.emit(|| EventKind::Unroutable { msg: id.0 });
            } else {
                self.emit(|| EventKind::Kill { msg: id.0 });
            }
            if retryable {
                continue;
            }
            if unroutable {
                self.stats.on_unroutable(id);
            } else {
                self.stats.on_kill(id);
            }
            if self.retry.is_some() {
                self.stats.abandoned_msgs += 1;
                if let Some(m) = &self.metrics {
                    m.abandoned.inc();
                }
            }
            if let Some(m) = &self.metrics {
                if unroutable {
                    m.unroutable.inc();
                } else {
                    m.killed.inc();
                }
            }
        }
        self.recompute_credits_and_loads();
    }

    /// Executes fault-plan actions due at the current cycle.
    fn run_plan(&mut self) {
        let Some(plan) = &mut self.plan else { return };
        let due: Vec<_> = plan.pop_due(self.cycle).to_vec();
        for pa in due {
            match pa.action {
                FaultAction::FailLink(n, p) => self.inject_link_fault(n, p),
                FaultAction::RepairLink(n, p) => self.repair_link(n, p),
                FaultAction::FailNode(n) => self.inject_node_fault(n),
                FaultAction::RepairNode(n) => self.repair_node(n),
            }
        }
    }

    /// Re-injects messages whose retry backoff elapsed; abandons them when
    /// an endpoint is (still) faulty — end-to-end retransmission cannot
    /// proceed without both endpoints, and waiting indefinitely would stall
    /// the drain loop.
    fn run_retries(&mut self) {
        while self.retries.front().is_some_and(|r| r.due <= self.cycle) {
            let r = self.retries.pop_front().expect("checked");
            let Some(meta) = self.stats.meta(r.id).copied() else { continue };
            if self.faults.node_faulty(meta.src) || self.faults.node_faulty(meta.dst) {
                if r.unroutable {
                    self.stats.on_unroutable(r.id);
                } else {
                    self.stats.on_kill(r.id);
                }
                self.stats.abandoned_msgs += 1;
                if let Some(m) = &self.metrics {
                    m.abandoned.inc();
                    if r.unroutable {
                        m.unroutable.inc();
                    } else {
                        m.killed.inc();
                    }
                }
                continue;
            }
            self.stats.on_retry(r.id);
            let attempt = meta.attempts + 1;
            self.emit(|| EventKind::Retry { msg: r.id.0, attempt });
            if let Some(m) = &self.metrics {
                m.retried.inc();
            }
            let header = Header::new(r.id, meta.src, meta.dst, meta.len_flits);
            self.nodes[meta.src.idx()].staging.extend(Flit::sequence(header));
            self.mark_active(meta.src.idx());
        }
    }

    /// Rebuilds credit counters and adaptivity loads from buffer occupancy
    /// (used after worm kills, which invalidate incremental accounting).
    fn recompute_credits_and_loads(&mut self) {
        let topo = Arc::clone(&self.topo);
        for n in topo.nodes() {
            for p in topo.ports() {
                let Some(m) = topo.neighbor(n, p) else { continue };
                let q = topo.port_towards(m, n).expect("reverse");
                for v in 0..self.vcs {
                    let occupied = self.nodes[m.idx()].inputs[q.idx()][v].fifo.len() as u32;
                    let in_flight = matches!(
                        &self.nodes[n.idx()].out_reg[p.idx()],
                        Some((vc, _)) if vc.idx() == v
                    ) as u32;
                    self.nodes[n.idx()].outputs[p.idx()][v].credits =
                        self.cfg.buffer_depth - occupied - in_flight;
                }
            }
        }
        for n in 0..self.nodes.len() {
            let mut loads = vec![0u32; self.topo.degree()];
            for inputs in &self.nodes[n].inputs {
                for vc in inputs {
                    if let RouteState::Out(p, _) = vc.route {
                        loads[p.idx()] += vc.fifo.len() as u32;
                    }
                }
            }
            self.nodes[n].out_assigned = loads;
        }
    }

    // ------------------------------------------------------------- views

    fn view_data(&self, n: NodeId) -> ViewData {
        let node = &self.nodes[n.idx()];
        let degree = self.topo.degree();
        let mut out_free = vec![vec![false; self.vcs]; degree];
        let mut link_alive = vec![false; degree];
        for p in 0..degree {
            let alive = self.faults.link_usable(self.topo.as_ref(), n, PortId(p as u8));
            link_alive[p] = alive;
            if alive {
                for v in 0..self.vcs {
                    out_free[p][v] = node.out_channel_free(p, v);
                }
            }
        }
        let mut out_load = node.out_assigned.clone();
        for p in 0..degree {
            if node.out_reg[p].is_some() {
                out_load[p] += 1;
            }
        }
        ViewData { out_free, out_load, link_alive }
    }

    // -------------------------------------------------------------- step

    /// Advances the network one cycle.
    ///
    /// Every phase iterates the *active set* — the nodes holding staged,
    /// buffered or in-register flits — instead of dense-scanning the whole
    /// topology; see `DESIGN.md` §12 for the activation invariants. The
    /// retained dense scan ([`Network::set_dense_reference`]) is observably
    /// identical and serves as the differential-testing oracle.
    pub fn step(&mut self) {
        let topo = Arc::clone(&self.topo);
        let degree = topo.degree();
        let mut moved = false;

        // 0. scripted fault-plan actions and due retry re-injections
        self.run_plan();
        self.run_retries();

        // periodic buffer-occupancy sampling (only when metrics attached);
        // cycle 0 — before any traffic can have entered the network — is
        // skipped so short runs don't skew the histogram's low bins with a
        // guaranteed all-zero sample per node
        if let Some(m) = &self.metrics {
            if self.cycle != 0 && self.cycle.is_multiple_of(OCCUPANCY_SAMPLE_PERIOD) {
                for node in &self.nodes {
                    m.buffer_occupancy.observe(node.buffered_flits() as u64);
                }
            }
        }

        // 1. control-plane deliveries due this cycle
        let mut due = std::mem::take(&mut self.scratch.due);
        while self.control.front().is_some_and(|d| d.due <= self.cycle) {
            due.push(self.control.pop_front().expect("checked"));
        }
        for d in due.drain(..) {
            if self.faults.node_faulty(d.to) {
                continue;
            }
            let vd = self.view_data(d.to);
            let view = vd.view(d.to, self.cycle);
            let replies = self.ctrls[d.to.idx()].on_control(&view, d.from_port, &d.payload);
            self.enqueue_control(d.to, replies);
        }
        self.scratch.due = due;

        // the cycle's working set: ascending node order matches the dense
        // scan, so phase iteration order — and thus arbitration and the
        // trace-event stream — is independent of activation history
        let mut cur = std::mem::take(&mut self.scratch.cur);
        cur.clear();
        if self.dense_reference {
            cur.extend(0..self.nodes.len() as u32);
        } else {
            self.active_list.sort_unstable();
            cur.append(&mut self.active_list);
        }

        // 2. link traversal: output registers -> downstream input FIFOs
        for &ni in &cur {
            let ni = ni as usize;
            let n = NodeId(ni as u32);
            for p in 0..degree {
                let Some((vc, flit)) = self.nodes[ni].out_reg[p].take() else {
                    continue;
                };
                let port = PortId(p as u8);
                if !self.faults.link_usable(topo.as_ref(), n, port) {
                    // flit caught on a just-failed link. The fault injector
                    // rips every worm touching a dying link, so the message
                    // is normally already killed and untracked; if it IS
                    // still live (a fault path that missed the worm),
                    // dropping the flit silently would leak the message —
                    // stats accounting would never balance and drain()
                    // would hang. Kill it through the normal path instead.
                    if self.stats.tracks(flit.msg) {
                        self.stats.flits_dropped_on_dead_link += 1;
                        self.scratch.dropped.insert(flit.msg);
                    }
                    continue;
                }
                let m = topo.neighbor(n, port).expect("usable link");
                let q = topo.port_towards(m, n).expect("reverse");
                self.nodes[m.idx()].inputs[q.idx()][vc.idx()].fifo.push_back(flit);
                self.mark_active(m.idx());
                moved = true;
            }
        }
        if !self.scratch.dropped.is_empty() {
            let dropped = std::mem::take(&mut self.scratch.dropped);
            self.kill_messages(&dropped, false);
            self.scratch.dropped = dropped;
            self.scratch.dropped.clear();
        }

        // 3. injection: staging -> injection FIFO
        for &ni in &cur {
            let node = &mut self.nodes[ni as usize];
            let inj = node.inputs.len() - 1;
            while !node.staging.is_empty()
                && (node.inputs[inj][0].fifo.len() as u32) < self.cfg.buffer_depth
            {
                let f = node.staging.pop_front().expect("checked");
                node.inputs[inj][0].fifo.push_back(f);
                moved = true;
            }
        }

        // nodes that received their first flit during link traversal must
        // route and arbitrate it THIS cycle, exactly as the dense scan does
        if !self.dense_reference && !self.active_list.is_empty() {
            cur.append(&mut self.active_list);
            cur.sort_unstable();
        }

        // 4. routing decisions
        let mut unroutable = std::mem::take(&mut self.scratch.unroutable);
        for &ni in &cur {
            let n = NodeId(ni);
            if self.faults.node_faulty(n) {
                continue;
            }
            let nports = self.nodes[ni as usize].inputs.len();
            for ip in 0..nports {
                for iv in 0..self.nodes[ni as usize].inputs[ip].len() {
                    self.route_one(n, ip, iv, &mut unroutable);
                }
            }
        }
        self.kill_messages(&unroutable, true);
        unroutable.clear();
        self.scratch.unroutable = unroutable;

        // 5. ejection + switch allocation
        let mut credit_returns = std::mem::take(&mut self.scratch.credit_returns);
        let mut used = std::mem::take(&mut self.scratch.used);
        for &ni in &cur {
            let ni = ni as usize;
            let n = NodeId(ni as u32);
            let nports = self.nodes[ni].inputs.len();
            used.clear();
            used.resize(nports, false);

            // ejection first (delivery has priority on the input port)
            for ip in 0..nports {
                if used[ip] {
                    continue;
                }
                for iv in 0..self.nodes[ni].inputs[ip].len() {
                    let vc = &mut self.nodes[ni].inputs[ip][iv];
                    if vc.route != RouteState::Local || vc.fifo.is_empty() {
                        continue;
                    }
                    let flit = vc.fifo.pop_front().expect("checked");
                    moved = true;
                    used[ip] = true;
                    if let Some(h) = flit.header() {
                        self.stats.on_head_arrival(flit.msg, h.hops);
                    }
                    let is_tail = matches!(flit.kind, FlitKind::Tail)
                        || matches!(flit.kind, FlitKind::Head(h) if h.len_flits <= 1);
                    if is_tail {
                        let meta = self.stats.on_deliver(flit.msg, self.cycle);
                        self.emit(|| EventKind::Deliver { node: n, msg: flit.msg.0 });
                        if let Some(m) = &self.metrics {
                            m.delivered.inc();
                            if let Some(meta) = meta {
                                m.latency.observe(self.cycle - meta.inject_cycle);
                                m.hops.observe(meta.hops as u64);
                                m.excess_hops
                                    .observe(meta.hops.saturating_sub(meta.min_dist) as u64);
                            }
                        }
                        self.nodes[ni].inputs[ip][iv].reset_route();
                    }
                    if ip < degree {
                        credit_returns.push((n, PortId(ip as u8), iv));
                    }
                    break; // one flit per input port
                }
            }

            // switch: one flit per output port, round-robin over inputs
            for p in 0..degree {
                if self.nodes[ni].out_reg[p].is_some() {
                    continue;
                }
                let slots = nports * self.vcs;
                let start = self.nodes[ni].rr[p];
                let mut winner: Option<(usize, usize, VcId)> = None;
                // two passes when fairness for misrouted messages is on:
                // first only misrouted candidates, then everyone
                let passes: &[bool] =
                    if self.cfg.prioritize_misrouted { &[true, false] } else { &[false] };
                'arb: for &misrouted_only in passes {
                    for off in 0..slots {
                        let s = (start + off) % slots;
                        let ip = s / self.vcs;
                        let iv = s % self.vcs;
                        if iv >= self.nodes[ni].inputs[ip].len() || used[ip] {
                            continue;
                        }
                        let vc = &self.nodes[ni].inputs[ip][iv];
                        if misrouted_only && !vc.misrouted {
                            continue;
                        }
                        let RouteState::Out(op, ov) = vc.route else { continue };
                        if op.idx() != p || vc.fifo.is_empty() {
                            continue;
                        }
                        if self.nodes[ni].outputs[p][ov.idx()].credits == 0 {
                            continue;
                        }
                        winner = Some((ip, iv, ov));
                        self.nodes[ni].rr[p] = (s + 1) % slots;
                        break 'arb;
                    }
                }
                let Some((ip, iv, ov)) = winner else { continue };
                used[ip] = true;
                let mut flit =
                    self.nodes[ni].inputs[ip][iv].fifo.pop_front().expect("winner has flit");
                moved = true;
                if let Some(h) = flit.header_mut() {
                    h.hops += 1;
                }
                let is_tail = matches!(flit.kind, FlitKind::Tail)
                    || matches!(flit.kind, FlitKind::Head(h) if h.len_flits <= 1);
                if is_tail {
                    self.nodes[ni].inputs[ip][iv].reset_route();
                    self.nodes[ni].outputs[p][ov.idx()].owner = None;
                    self.emit(|| EventKind::VcRelease {
                        node: n,
                        msg: flit.msg.0,
                        port: PortId(p as u8),
                        vc: ov,
                    });
                }
                self.nodes[ni].outputs[p][ov.idx()].credits -= 1;
                self.nodes[ni].out_assigned[p] = self.nodes[ni].out_assigned[p].saturating_sub(1);
                self.nodes[ni].out_reg[p] = Some((ov, flit));
                if ip < degree {
                    credit_returns.push((n, PortId(ip as u8), iv));
                }
            }
        }

        // apply credit returns to the upstream senders
        for &(n, p, iv) in &credit_returns {
            let Some(m) = topo.neighbor(n, p) else { continue };
            let q = topo.port_towards(m, n).expect("reverse");
            let c = &mut self.nodes[m.idx()].outputs[q.idx()][iv];
            c.credits = (c.credits + 1).min(self.cfg.buffer_depth);
        }
        credit_returns.clear();
        self.scratch.credit_returns = credit_returns;
        self.scratch.used = used;

        // 6. watchdog (messages waiting out a retry backoff are in flight
        // but legitimately motionless — not a deadlock)
        if moved {
            self.last_move = self.cycle;
        } else if self.in_flight() > self.retries.len()
            && self.cycle - self.last_move >= self.cfg.deadlock_threshold
        {
            self.stats.deadlock = true;
        }
        self.last_moved = moved;

        // prune the active set: drop nodes whose work drained (delivered,
        // killed, or every flit handed downstream). A node only re-enters
        // through mark_active, so mask ⟺ list ⟺ has-work holds at every
        // cycle boundary. The dense path rebuilds the bookkeeping exactly,
        // keeping mode switches safe at any boundary.
        if self.dense_reference {
            // the dense scan ignores marks made during the step (send,
            // link arrivals); its working set covers every node, so the
            // rebuild below recreates mask and list from scratch
            self.active_list.clear();
        }
        debug_assert!(self.active_list.is_empty());
        for &ni in &cur {
            let ni = ni as usize;
            let w = self.nodes[ni].has_work();
            self.active_mask[ni] = w;
            if w {
                self.active_list.push(ni as u32);
            }
        }
        cur.clear();
        self.scratch.cur = cur;

        self.cycle += 1;
    }

    /// Decision handling for one input VC.
    fn route_one(&mut self, n: NodeId, ip: usize, iv: usize, unroutable: &mut HashSet<MessageId>) {
        let degree = self.topo.degree();
        {
            let vc = &self.nodes[n.idx()].inputs[ip][iv];
            if vc.route != RouteState::Unrouted {
                return;
            }
            match vc.fifo.front() {
                Some(f) if f.header().is_some() => {}
                _ => return,
            }
        }

        // advance the decision countdown
        match self.nodes[n.idx()].inputs[ip][iv].phase {
            Some(DecisionPhase::Waiting(c)) if c > 1 => {
                self.nodes[n.idx()].inputs[ip][iv].phase = Some(DecisionPhase::Waiting(c - 1));
                return;
            }
            Some(DecisionPhase::Waiting(_)) => {
                // latency elapsed this cycle: consult and apply below
                self.nodes[n.idx()].inputs[ip][iv].phase = Some(DecisionPhase::Ready);
            }
            Some(DecisionPhase::Ready) | None => {}
        }

        // consult the controller
        let vd = self.view_data(n);
        let view = vd.view(n, self.cycle);
        let in_port = if ip < degree { Some(PortId(ip as u8)) } else { None };
        let header_copy = {
            let vc = &mut self.nodes[n.idx()].inputs[ip][iv];
            *vc.fifo.front_mut().and_then(|f| f.header_mut()).expect("head checked")
        };
        // destination reached: deliver without consulting the algorithm
        if header_copy.dst == n {
            let first_count = {
                let vc = &mut self.nodes[n.idx()].inputs[ip][iv];
                vc.route = RouteState::Local;
                let first = !vc.counted;
                vc.counted = true;
                first
            };
            if first_count {
                self.stats.decision_steps.add(0);
                self.emit(|| EventKind::RouteDecision {
                    node: n,
                    msg: header_copy.msg.0,
                    in_port,
                    in_vc: VcId(iv as u8),
                    outcome: RouteOutcome::Deliver,
                    steps: 0,
                    misrouted: header_copy.misrouted,
                });
                if let Some(m) = &self.metrics {
                    m.decision_steps.observe(0);
                }
            }
            return;
        }
        let mut header = header_copy;
        let dec = self.ctrls[n.idx()].route(&view, &mut header, in_port, VcId(iv as u8));
        {
            // write back header updates
            let vc = &mut self.nodes[n.idx()].inputs[ip][iv];
            if let Some(h) = vc.fifo.front_mut().and_then(|f| f.header_mut()) {
                *h = header;
            }
        }

        let first_sight = self.nodes[n.idx()].inputs[ip][iv].phase.is_none();
        if first_sight {
            if !self.nodes[n.idx()].inputs[ip][iv].counted {
                self.nodes[n.idx()].inputs[ip][iv].counted = true;
                self.stats.decision_steps.add(dec.steps as u64);
                self.emit(|| EventKind::RouteDecision {
                    node: n,
                    msg: header_copy.msg.0,
                    in_port,
                    in_vc: VcId(iv as u8),
                    outcome: match dec.verdict {
                        Verdict::Route(p, v) => RouteOutcome::Routed(p, v),
                        Verdict::Deliver => RouteOutcome::Deliver,
                        Verdict::Wait => RouteOutcome::Wait,
                        Verdict::Unroutable => RouteOutcome::Unroutable,
                    },
                    steps: dec.steps,
                    misrouted: header.misrouted,
                });
                if let Some(m) = &self.metrics {
                    m.decision_steps.observe(dec.steps as u64);
                }
            }
            let delay = dec.steps.saturating_mul(self.cfg.decision_cycles_per_step).max(1);
            if delay > 1 {
                self.nodes[n.idx()].inputs[ip][iv].phase = Some(DecisionPhase::Waiting(delay - 1));
                return;
            }
            self.nodes[n.idx()].inputs[ip][iv].phase = Some(DecisionPhase::Ready);
        }

        // apply the verdict (Ready state retries for free on contention)
        match dec.verdict {
            Verdict::Deliver => {
                self.nodes[n.idx()].inputs[ip][iv].route = RouteState::Local;
            }
            Verdict::Wait => {
                // trace completeness: a waiting head never reaches the
                // VcStall path (the controller withheld the grant), so the
                // blocked cycle and the channels that would unblock it are
                // recorded here — the diagnoser's wait-for edges
                if self.sink.is_some() {
                    let wants = self.probe_wants(n, &header, in_port, VcId(iv as u8));
                    self.emit(|| EventKind::RouteWait { node: n, msg: header_copy.msg.0, wants });
                }
            }
            Verdict::Unroutable => {
                unroutable.insert(header_copy.msg);
            }
            Verdict::Route(p, v) => {
                let ok = p.idx() < degree
                    && v.idx() < self.vcs
                    && self.faults.link_usable(self.topo.as_ref(), n, p)
                    && self.nodes[n.idx()].out_channel_free(p.idx(), v.idx());
                if !ok {
                    // granted a route but the output channel is unusable
                    // this cycle: a VC-allocation stall
                    self.emit(|| EventKind::VcStall {
                        node: n,
                        msg: header_copy.msg.0,
                        port: p,
                        vc: v,
                    });
                }
                if ok {
                    let misrouted = self.nodes[n.idx()].inputs[ip][iv]
                        .fifo
                        .front()
                        .and_then(|f| f.header())
                        .is_some_and(|h| h.misrouted);
                    let node = &mut self.nodes[n.idx()];
                    node.outputs[p.idx()][v.idx()].owner = Some(header_copy.msg);
                    node.inputs[ip][iv].route = RouteState::Out(p, v);
                    node.inputs[ip][iv].misrouted = misrouted;
                    node.out_assigned[p.idx()] += header_copy.len_flits;
                    self.emit(|| EventKind::VcAcquire {
                        node: n,
                        msg: header_copy.msg.0,
                        port: p,
                        vc: v,
                    });
                }
            }
        }
    }

    /// Runs `cycles` steps (stops early on deadlock).
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            if self.stats.deadlock {
                break;
            }
            self.step();
        }
    }

    /// Runs until all in-flight messages terminate or `budget` cycles
    /// elapse. Returns true if the network drained.
    pub fn drain(&mut self, budget: u64) -> bool {
        let start = self.cycle;
        while self.in_flight() > 0 && !self.stats.deadlock {
            if self.cycle - start >= budget {
                return false;
            }
            self.step();
        }
        self.in_flight() == 0
    }

    /// Human-readable dump of every occupied buffer — debugging aid for
    /// stuck or deadlocked networks.
    pub fn dump_occupancy(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for (ni, node) in self.nodes.iter().enumerate() {
            for (ip, inputs) in node.inputs.iter().enumerate() {
                for (iv, vc) in inputs.iter().enumerate() {
                    if !vc.fifo.is_empty() {
                        let _ = writeln!(
                            s,
                            "n{ni} in[{ip}][{iv}] route={:?} phase={:?} flits={:?}",
                            vc.route,
                            vc.phase,
                            vc.fifo.iter().map(|f| (f.msg, f.seq)).collect::<Vec<_>>()
                        );
                    }
                }
            }
            for (p, reg) in node.out_reg.iter().enumerate() {
                if let Some((v, f)) = reg {
                    let _ = writeln!(s, "n{ni} outreg[{p}] vc={v} msg={:?}", f.msg);
                }
            }
            for (p, outs) in node.outputs.iter().enumerate() {
                for (v, o) in outs.iter().enumerate() {
                    if o.owner.is_some() || o.credits != self.cfg.buffer_depth {
                        let _ = writeln!(
                            s,
                            "n{ni} out[{p}][{v}] owner={:?} credits={}",
                            o.owner, o.credits
                        );
                    }
                }
            }
            if !node.staging.is_empty() {
                let _ = writeln!(s, "n{ni} staging={}", node.staging.len());
            }
        }
        s
    }

    /// Direct read access to a controller (diagnostics/experiments).
    pub fn controller(&self, n: NodeId) -> &dyn NodeController {
        self.ctrls[n.idx()].as_ref()
    }
}

/// Owned per-node snapshot backing a [`RouterView`].
struct ViewData {
    out_free: Vec<Vec<bool>>,
    out_load: Vec<u32>,
    link_alive: Vec<bool>,
}

impl ViewData {
    fn view(&self, node: NodeId, cycle: u64) -> RouterView<'_> {
        RouterView {
            node,
            cycle,
            out_free: &self.out_free,
            out_load: &self.out_load,
            link_alive: &self.link_alive,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::Decision;
    use crate::traffic::{Pattern, TrafficSource};
    use ftr_topo::{Mesh2D, Topology, EAST, NORTH, SOUTH, WEST};

    /// XY dimension-order routing with a configurable step count.
    struct Xy {
        mesh: Mesh2D,
        steps: u32,
    }

    struct XyCtl {
        mesh: Mesh2D,
        steps: u32,
    }

    impl RoutingAlgorithm for Xy {
        fn name(&self) -> String {
            "xy-test".into()
        }
        fn num_vcs(&self) -> usize {
            1
        }
        fn controller(&self, _t: &dyn Topology, _n: NodeId) -> Box<dyn NodeController> {
            Box::new(XyCtl { mesh: self.mesh.clone(), steps: self.steps })
        }
    }

    impl NodeController for XyCtl {
        fn route(
            &mut self,
            view: &RouterView<'_>,
            h: &mut Header,
            _ip: Option<PortId>,
            _iv: VcId,
        ) -> Decision {
            let (dx, dy) = self.mesh.offset(view.node, h.dst);
            let p = if dx > 0 {
                EAST
            } else if dx < 0 {
                WEST
            } else if dy > 0 {
                NORTH
            } else {
                SOUTH
            };
            if view.out_free[p.idx()][0] {
                Decision::new(Verdict::Route(p, VcId(0)), self.steps)
            } else {
                Decision::new(Verdict::Wait, self.steps)
            }
        }
    }

    /// Fully adaptive minimal on one VC — deadlocks under heavy load.
    struct GreedyAdaptive {
        mesh: Mesh2D,
    }

    impl RoutingAlgorithm for GreedyAdaptive {
        fn name(&self) -> String {
            "greedy".into()
        }
        fn num_vcs(&self) -> usize {
            1
        }
        fn controller(&self, _t: &dyn Topology, _n: NodeId) -> Box<dyn NodeController> {
            Box::new(GreedyCtl { mesh: self.mesh.clone() })
        }
    }

    struct GreedyCtl {
        mesh: Mesh2D,
    }

    impl NodeController for GreedyCtl {
        fn route(
            &mut self,
            view: &RouterView<'_>,
            h: &mut Header,
            _ip: Option<PortId>,
            _iv: VcId,
        ) -> Decision {
            for p in self.mesh.minimal_directions(view.node, h.dst) {
                if view.out_free[p.idx()][0] {
                    return Decision::new(Verdict::Route(p, VcId(0)), 1);
                }
            }
            Decision::new(Verdict::Wait, 1)
        }
    }

    fn mesh_net(side: u32, steps: u32, cfg: SimConfig) -> (Arc<Mesh2D>, Network) {
        let topo = Arc::new(Mesh2D::new(side, side));
        let algo = Xy { mesh: (*topo).clone(), steps };
        let net = Network::builder(topo.clone()).config(cfg).build(&algo).expect("valid config");
        (topo, net)
    }

    #[test]
    fn builder_rejects_invalid_configs() {
        let topo = Arc::new(Mesh2D::new(3, 3));
        let algo = Xy { mesh: (*topo).clone(), steps: 1 };
        assert_eq!(
            Network::builder(topo.clone()).buffer_depth(0).build(&algo).err(),
            Some(BuildError::ZeroBufferDepth)
        );
        assert_eq!(
            Network::builder(topo.clone()).deadlock_threshold(0).build(&algo).err(),
            Some(BuildError::ZeroDeadlockThreshold)
        );
        struct NoVc;
        impl RoutingAlgorithm for NoVc {
            fn name(&self) -> String {
                "novc".into()
            }
            fn num_vcs(&self) -> usize {
                0
            }
            fn controller(&self, _t: &dyn Topology, _n: NodeId) -> Box<dyn NodeController> {
                unreachable!()
            }
        }
        assert_eq!(
            Network::builder(topo.clone()).build(&NoVc).err(),
            Some(BuildError::NoVirtualChannels)
        );
    }

    #[test]
    fn trace_events_cover_message_lifecycle() {
        let topo = Arc::new(Mesh2D::new(4, 4));
        let algo = Xy { mesh: (*topo).clone(), steps: 2 };
        let sink = Arc::new(ftr_obs::RingSink::new(4096));
        let registry = Arc::new(MetricsRegistry::new());
        let mut net = Network::builder(topo.clone())
            .trace(sink.clone())
            .metrics(registry.clone())
            .build(&algo)
            .expect("valid config");
        net.set_measuring(true);
        let id = net.send(topo.node_at(0, 0), topo.node_at(2, 1), 4).unwrap();
        assert!(net.drain(1_000));

        let events = sink.events();
        assert!(!events.is_empty());
        // cycle stamps never decrease
        assert!(events.windows(2).all(|w| w[0].cycle <= w[1].cycle));
        // inject precedes every decision, which precede the delivery
        let tags: Vec<&str> = events.iter().map(|e| e.kind.tag()).collect();
        assert_eq!(tags.first(), Some(&"inject"));
        assert_eq!(tags.last(), Some(&"deliver"));
        // per-hop decisions: 3 hops = decisions at (0,0), (1,0), (2,0); the
        // destination's 0-step delivery shortcut also records one
        let decisions = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::RouteDecision { msg, .. } if msg == id.0))
            .count();
        assert_eq!(decisions, 4);
        // trace-derived step totals agree with the stats accumulator
        let steps_from_trace: u64 = events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::RouteDecision { steps, .. } => Some(steps as u64),
                _ => None,
            })
            .sum();
        assert_eq!(steps_from_trace, net.stats.decision_steps.sum);
        // metrics registry saw the same traffic
        assert_eq!(registry.counter_value("sim.injected"), Some(1));
        assert_eq!(registry.counter_value("sim.delivered"), Some(1));
        let lat = registry.histogram_snapshot("sim.latency").expect("latency recorded");
        assert_eq!(lat.count, 1);
        assert_eq!(lat.sum, net.stats.latency.sum);
    }

    #[test]
    fn no_sink_means_no_events_and_working_sim() {
        let (topo, mut net) = mesh_net(4, 1, SimConfig::default());
        assert!(net.trace_sink().is_none());
        assert!(net.metrics_registry().is_none());
        net.send(topo.node_at(0, 0), topo.node_at(3, 3), 4).unwrap();
        assert!(net.drain(1_000));
        assert_eq!(net.stats.delivered_msgs, 1);
        assert!(net.stats.accounting_balanced());
    }

    #[test]
    fn single_message_latency_is_sane() {
        let (topo, mut net) = mesh_net(4, 1, SimConfig::default());
        net.set_measuring(true);
        net.send(topo.node_at(0, 0), topo.node_at(3, 3), 4).unwrap();
        assert!(net.drain(1_000));
        assert_eq!(net.stats.delivered_msgs, 1);
        assert_eq!(net.stats.hops.max, 6, "XY path is 6 hops");
        // lower bound: 6 links + serialization of 4 flits
        assert!(net.stats.latency.min >= 9, "latency {}", net.stats.latency.min);
        assert!(net.stats.latency.max < 60);
    }

    #[test]
    fn decision_latency_increases_message_latency() {
        let mut lat = Vec::new();
        for steps in [1, 3] {
            let (topo, mut net) = mesh_net(4, steps, SimConfig::default());
            net.set_measuring(true);
            net.send(topo.node_at(0, 0), topo.node_at(3, 3), 4).unwrap();
            assert!(net.drain(2_000));
            lat.push(net.stats.latency.mean());
        }
        // 6 routing decisions on the path, each 2 cycles slower
        assert!(lat[1] >= lat[0] + 8.0, "3-step decisions should cost >= 8 extra cycles: {lat:?}");
    }

    #[test]
    fn many_messages_all_delivered() {
        let (topo, mut net) = mesh_net(4, 1, SimConfig::default());
        net.set_measuring(true);
        let mut tf = TrafficSource::new(Pattern::Uniform, 0.1, 4, 42);
        for _ in 0..500 {
            for (s, d, l) in tf.tick(topo.as_ref(), net.faults()) {
                net.send(s, d, l).unwrap();
            }
            net.step();
        }
        assert!(net.drain(5_000), "network must drain");
        assert!(!net.stats.deadlock);
        assert!(net.stats.delivered_msgs > 100);
        assert_eq!(net.stats.delivered_msgs, net.stats.injected_msgs);
    }

    #[test]
    fn wormhole_backpressure_respects_credits() {
        // tiny buffers, long messages: must still deliver without loss
        let cfg = SimConfig { buffer_depth: 2, ..Default::default() };
        let (topo, mut net) = mesh_net(4, 1, cfg);
        net.set_measuring(true);
        for y in 0..4 {
            net.send(topo.node_at(0, y), topo.node_at(3, y), 16).unwrap();
        }
        assert!(net.drain(5_000));
        assert_eq!(net.stats.delivered_msgs, 4);
    }

    #[test]
    fn greedy_adaptive_deadlocks_under_pressure() {
        // 4 long messages chasing each other around the central ring with
        // 1-flit buffers reliably deadlock a fully adaptive 1-VC router
        let topo = Arc::new(Mesh2D::new(3, 3));
        let algo = GreedyAdaptive { mesh: (*topo).clone() };
        let cfg = SimConfig { buffer_depth: 1, deadlock_threshold: 200, ..Default::default() };
        let mut net = Network::builder(topo.clone()).config(cfg).build(&algo).expect("valid");
        // four corner-to-corner messages forming a cycle of turns
        net.send(topo.node_at(0, 0), topo.node_at(2, 2), 32).unwrap();
        net.send(topo.node_at(2, 0), topo.node_at(0, 2), 32).unwrap();
        net.send(topo.node_at(2, 2), topo.node_at(0, 0), 32).unwrap();
        net.send(topo.node_at(0, 2), topo.node_at(2, 0), 32).unwrap();
        let drained = net.drain(6_000);
        // either the schedule dodged the deadlock (possible) or the
        // watchdog fired; with these parameters the cycle forms reliably
        assert!(!drained || net.stats.deadlock || net.stats.delivered_msgs == 4);
        // the XY router under identical load must NOT deadlock
        let algo2 = Xy { mesh: (*topo).clone(), steps: 1 };
        let mut net2 = Network::builder(topo.clone()).config(cfg).build(&algo2).expect("valid");
        net2.send(topo.node_at(0, 0), topo.node_at(2, 2), 32).unwrap();
        net2.send(topo.node_at(2, 0), topo.node_at(0, 2), 32).unwrap();
        net2.send(topo.node_at(2, 2), topo.node_at(0, 0), 32).unwrap();
        net2.send(topo.node_at(0, 2), topo.node_at(2, 0), 32).unwrap();
        assert!(net2.drain(6_000), "XY must not deadlock");
        assert!(!net2.stats.deadlock);
    }

    #[test]
    fn static_link_fault_kills_nothing_when_idle() {
        let (topo, mut net) = mesh_net(4, 1, SimConfig::default());
        net.inject_link_fault(topo.node_at(1, 1), EAST);
        assert_eq!(net.stats.killed_msgs, 0);
        assert!(net.faults().link_faulty(topo.as_ref(), topo.node_at(1, 1), EAST));
    }

    #[test]
    fn dynamic_link_fault_rips_spanning_worm() {
        let (topo, mut net) = mesh_net(4, 1, SimConfig::default());
        let src = topo.node_at(0, 1);
        let dst = topo.node_at(3, 1);
        net.send(src, dst, 24).unwrap(); // long worm across the row
        net.run(8); // head is past (1,1)-(2,1), tail still at source
        net.inject_link_fault(topo.node_at(1, 1), EAST);
        assert_eq!(net.stats.killed_msgs, 1, "worm spanned the failed link");
        assert!(net.drain(1_000));
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn node_fault_kills_transiting_and_destined_messages() {
        let (topo, mut net) = mesh_net(4, 1, SimConfig::default());
        net.send(topo.node_at(0, 1), topo.node_at(3, 1), 24).unwrap(); // transits (2,1)
        net.send(topo.node_at(2, 0), topo.node_at(2, 1), 8).unwrap(); // destined there
        net.run(6);
        net.inject_node_fault(topo.node_at(2, 1));
        assert_eq!(net.stats.killed_msgs, 2);
        assert!(net.drain(1_000));
    }

    #[test]
    fn unroutable_verdict_counts_and_removes() {
        struct Refuse;
        struct RefuseCtl;
        impl RoutingAlgorithm for Refuse {
            fn name(&self) -> String {
                "refuse".into()
            }
            fn num_vcs(&self) -> usize {
                1
            }
            fn controller(&self, _t: &dyn Topology, _n: NodeId) -> Box<dyn NodeController> {
                Box::new(RefuseCtl)
            }
        }
        impl NodeController for RefuseCtl {
            fn route(
                &mut self,
                _v: &RouterView<'_>,
                _h: &mut Header,
                _ip: Option<PortId>,
                _iv: VcId,
            ) -> Decision {
                Decision::new(Verdict::Unroutable, 2)
            }
        }
        let topo = Arc::new(Mesh2D::new(3, 3));
        let mut net = Network::builder(topo.clone()).build(&Refuse).expect("valid");
        net.send(topo.node_at(0, 0), topo.node_at(2, 2), 4).unwrap();
        net.run(10);
        assert_eq!(net.stats.unroutable_msgs, 1);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn decision_steps_are_recorded() {
        let (topo, mut net) = mesh_net(4, 3, SimConfig::default());
        net.send(topo.node_at(0, 0), topo.node_at(2, 0), 2).unwrap();
        assert!(net.drain(1_000));
        // 3 routing decisions (source + 2 intermediate? source + node(1,0));
        // destination ejects without a decision (recorded as 0 steps)
        assert!(net.stats.decision_steps.count >= 3);
        assert_eq!(net.stats.decision_steps.max, 3);
    }

    #[test]
    fn control_plane_propagates_with_unit_latency() {
        struct Gossip;
        struct GossipCtl {
            heard: i64,
        }
        impl RoutingAlgorithm for Gossip {
            fn name(&self) -> String {
                "gossip".into()
            }
            fn num_vcs(&self) -> usize {
                1
            }
            fn controller(&self, _t: &dyn Topology, _n: NodeId) -> Box<dyn NodeController> {
                Box::new(GossipCtl { heard: 0 })
            }
        }
        impl NodeController for GossipCtl {
            fn route(
                &mut self,
                _v: &RouterView<'_>,
                _h: &mut Header,
                _ip: Option<PortId>,
                _iv: VcId,
            ) -> Decision {
                Decision::new(Verdict::Wait, 1)
            }
            fn on_fault(&mut self, view: &RouterView<'_>, _port: PortId) -> Vec<ControlMsg> {
                // flood a token to all alive neighbours
                (0..view.link_alive.len())
                    .filter(|&p| view.link_alive[p])
                    .map(|p| ControlMsg { port: PortId(p as u8), payload: vec![1] })
                    .collect()
            }
            fn on_control(
                &mut self,
                view: &RouterView<'_>,
                _from: PortId,
                payload: &[i64],
            ) -> Vec<ControlMsg> {
                if self.heard == 0 && payload == [1] {
                    self.heard = 1;
                    (0..view.link_alive.len())
                        .filter(|&p| view.link_alive[p])
                        .map(|p| ControlMsg { port: PortId(p as u8), payload: vec![1] })
                        .collect()
                } else {
                    Vec::new()
                }
            }
            fn state_word(&self) -> i64 {
                self.heard
            }
        }
        let topo = Arc::new(Mesh2D::new(5, 5));
        let mut net = Network::builder(topo.clone()).build(&Gossip).expect("valid");
        net.inject_link_fault(topo.node_at(2, 2), EAST);
        let settled = net.settle_control(1_000).expect("settles");
        // flood reaches the far corner within diameter+1 cycles
        assert!(settled <= 10, "settled in {settled}");
        for n in topo.nodes() {
            if n != topo.node_at(2, 2) && n != topo.node_at(3, 2) {
                assert_eq!(net.controller(n).state_word(), 1, "node {n} heard");
            }
        }
        assert!(net.stats.control_msgs > 20);
    }

    /// Regression for the silent flit-loss bug: a flit caught in an output
    /// register when its link dies used to hit a `debug_assert!` only —
    /// release builds dropped the flit on the floor and leaked the message
    /// (accounting never balanced, `drain` hung). This exercises a fault
    /// path that bypasses `inject_link_fault`'s worm ripping by flipping
    /// the link directly in the fault set. Must pass in debug AND release.
    #[test]
    fn dead_link_flit_is_killed_not_silently_dropped() {
        let topo = Arc::new(Mesh2D::new(4, 4));
        let algo = Xy { mesh: (*topo).clone(), steps: 1 };
        let sink = Arc::new(ftr_obs::RingSink::new(4096));
        let mut net =
            Network::builder(topo.clone()).trace(sink.clone()).build(&algo).expect("valid");
        let id = net.send(topo.node_at(0, 1), topo.node_at(3, 1), 6).unwrap();
        // advance until a flit of the worm sits on the (1,1)->(2,1) link
        let hot = topo.node_at(1, 1);
        for _ in 0..50 {
            if net.nodes[hot.idx()].out_reg[EAST.idx()].is_some() {
                break;
            }
            net.step();
        }
        assert!(net.nodes[hot.idx()].out_reg[EAST.idx()].is_some(), "worm must reach the link");
        // rip the link out from under the engine without killing the worm
        let t = Arc::clone(&net.topo);
        net.faults.fail_link(t.as_ref(), hot, EAST);
        net.step();
        assert_eq!(net.stats.flits_dropped_on_dead_link, 1);
        assert_eq!(net.stats.killed_msgs, 1, "message killed through the normal path");
        assert!(!net.stats.tracks(id), "no leaked in-flight entry");
        assert!(net.stats.accounting_balanced(), "balance must hold in every build profile");
        let killed =
            sink.events().iter().any(|e| matches!(e.kind, EventKind::Kill { msg } if msg == id.0));
        assert!(killed, "kill event emitted");
        assert!(net.drain(1_000), "engine still drains after the drop");
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn occupancy_sampling_skips_cycle_zero() {
        let topo = Arc::new(Mesh2D::new(4, 4));
        let algo = Xy { mesh: (*topo).clone(), steps: 1 };
        // shorter than one period: no samples at all (cycle 0 used to
        // contribute a guaranteed all-zero sample per node)
        let registry = Arc::new(MetricsRegistry::new());
        let mut net =
            Network::builder(topo.clone()).metrics(registry.clone()).build(&algo).expect("valid");
        for _ in 0..OCCUPANCY_SAMPLE_PERIOD {
            net.step();
        }
        let snap = registry.histogram_snapshot("sim.buffer_occupancy").expect("registered");
        assert_eq!(snap.count, 0, "no sample before the first full period");
        // k cycles sample at p, 2p, ... floor(k/p) times, once per node
        let registry = Arc::new(MetricsRegistry::new());
        let mut net =
            Network::builder(topo.clone()).metrics(registry.clone()).build(&algo).expect("valid");
        let k = 2 * OCCUPANCY_SAMPLE_PERIOD + 1; // cycles 0..=2p run; p and 2p sample
        for _ in 0..k {
            net.step();
        }
        let snap = registry.histogram_snapshot("sim.buffer_occupancy").expect("registered");
        assert_eq!(snap.count, 2 * topo.num_nodes() as u64);
    }

    #[test]
    fn active_set_tracks_work_exactly() {
        let (topo, mut net) = mesh_net(4, 1, SimConfig::default());
        assert!(net.active_nodes().is_empty(), "idle network, empty set");
        net.send(topo.node_at(0, 0), topo.node_at(3, 3), 4).unwrap();
        assert_eq!(net.active_nodes(), vec![topo.node_at(0, 0)], "send activates the source");
        assert!(net.drain(1_000));
        assert!(net.active_nodes().is_empty(), "drained network, empty set again");
        // the invariant holds mid-flight too: active ⟺ has_work
        net.send(topo.node_at(1, 1), topo.node_at(3, 0), 8).unwrap();
        for _ in 0..30 {
            net.step();
            for n in topo.nodes() {
                let active = net.active_mask[n.idx()];
                assert_eq!(active, net.nodes[n.idx()].has_work(), "node {n} at {}", net.cycle());
            }
        }
    }

    #[test]
    fn active_set_matches_dense_reference_under_faults_and_retries() {
        let mk = |dense: bool| {
            let topo = Arc::new(Mesh2D::new(5, 5));
            let algo = Xy { mesh: (*topo).clone(), steps: 2 };
            let plan = FaultPlan::new().transient_link(40, NodeId(6), EAST, 80).transient_node(
                100,
                NodeId(12),
                120,
            );
            let sink = Arc::new(ftr_obs::RingSink::new(1 << 16));
            let mut net = Network::builder(topo.clone())
                .fault_plan(plan)
                .retry(RetryPolicy { max_attempts: 3, backoff_cycles: 10 })
                .trace(sink.clone())
                .build(&algo)
                .expect("valid");
            net.set_dense_reference(dense);
            net.set_measuring(true);
            (topo, net, sink)
        };
        let (topo, mut act, sink_a) = mk(false);
        let (_, mut dense, sink_d) = mk(true);
        let mut tf_a = TrafficSource::new(Pattern::Uniform, 0.15, 4, 9);
        let mut tf_d = TrafficSource::new(Pattern::Uniform, 0.15, 4, 9);
        for _ in 0..400 {
            for (s, d, l) in tf_a.tick(topo.as_ref(), act.faults()) {
                let _ = act.send(s, d, l);
            }
            for (s, d, l) in tf_d.tick(topo.as_ref(), dense.faults()) {
                let _ = dense.send(s, d, l);
            }
            act.step();
            dense.step();
            assert_eq!(act.last_step_moved(), dense.last_step_moved(), "cycle {}", dense.cycle());
        }
        while (act.in_flight() > 0 || dense.in_flight() > 0) && act.cycle() < 10_000 {
            act.step();
            dense.step();
        }
        assert!(act.stats.injected_msgs > 100, "traffic actually flowed");
        assert_eq!(act.stats, dense.stats, "bit-identical stats");
        assert_eq!(sink_a.events(), sink_d.events(), "bit-identical trace streams");
    }
}
