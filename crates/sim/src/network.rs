//! The cycle-level network engine.
//!
//! Drives the per-node routers under the control of a
//! [`RoutingAlgorithm`]: link traversal, injection, routing decisions with
//! configurable latency, switch allocation (round-robin), ejection,
//! credit-based flow control, control-plane propagation of fault state, and
//! dynamic fault injection with worm-kill semantics (messages ripped by a
//! fault are removed network-wide and counted, standing in for the
//! higher-level recovery protocols the paper's §2.1 mentions).
//!
//! All data-path state lives in the struct-of-arrays `crate::arena`; the
//! step executes as a sequence of node-local *phases* over spatially
//! contiguous shards with a conservative barrier between phases. With one
//! shard the engine is the classic sequential simulator; with N shards the
//! phases run on OS threads and the barriers merge cross-shard effects
//! (flit handoffs, trace events, stats ops, credit returns) in shard order,
//! which reproduces the sequential ascending-node order exactly — results
//! are bit-identical for every thread count. See `DESIGN.md` §14.

#![allow(clippy::needless_range_loop)] // index loops mirror the hardware structure

use crate::arena::{ChanRef, Channels, Geometry};
use crate::flit::{Flit, FlitKind, Header, MessageId};
use crate::plan::{FaultAction, FaultPlan};
use crate::router::{DecisionPhase, RouteState};
use crate::routing::{ControlMsg, NodeController, RouterView, RoutingAlgorithm, Verdict};
use crate::stats::{MsgMeta, SimStats};
use ftr_obs::{
    Counter, EventKind, Histogram, MetricsRegistry, RouteOutcome, TraceEvent, TraceSink,
};
use ftr_topo::{FaultSet, NodeId, PortId, Topology, VcId};
use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Buffer depth per virtual channel (flits).
    pub buffer_depth: u32,
    /// Cycles one rule-interpretation step costs (the §4.3 delay model:
    /// wiring + 2 FCFB + memory access collapses to a per-step latency).
    pub decision_cycles_per_step: u32,
    /// Cycles without flit movement (while messages are in flight) that
    /// trigger the deadlock watchdog.
    pub deadlock_threshold: u64,
    /// Favour misrouted messages in switch allocation (§3: compensate "the
    /// double disadvantage of the longer path and higher loaded links").
    pub prioritize_misrouted: bool,
    /// Worker shards for the sharded step. `1` is the sequential engine;
    /// `0` resolves to [`crate::sweep::worker_count`] at build time.
    /// Results are bit-identical for every value.
    pub threads: usize,
    /// Minimum working-set size (nodes in the cycle's active set) before a
    /// multi-shard step fans out to OS threads; below it the shards run
    /// inline on the calling thread (same results, no spawn overhead).
    /// `0` forces OS threads whenever more than one shard exists.
    pub spawn_threshold: usize,
    /// Period (cycles) of the autonomous control-plane tick: every
    /// `tick_period` cycles each live controller's
    /// [`NodeController::on_tick`] runs (heartbeat probing, suspicion
    /// bookkeeping). `0` disables ticking entirely — the default, which
    /// keeps oracle-notified configurations byte-identical.
    pub tick_period: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            buffer_depth: 4,
            decision_cycles_per_step: 1,
            deadlock_threshold: 2_000,
            prioritize_misrouted: false,
            threads: 1,
            spawn_threshold: 2_048,
            tick_period: 0,
        }
    }
}

/// A pending control-plane delivery.
struct ControlDelivery {
    due: u64,
    to: NodeId,
    from_port: PortId,
    payload: Vec<i64>,
}

/// Reusable per-cycle scratch buffers of the master loop.
///
/// Every phase of [`Network::step`] used to heap-allocate fresh working
/// storage each cycle; keeping the buffers on the network and clearing
/// instead of dropping makes the per-cycle fixed cost allocation-free.
/// Per-shard working storage lives in [`ShardScratch`].
#[derive(Default)]
struct StepScratch {
    /// The working set at step entry (node indices, ascending).
    cur: Vec<u32>,
    /// `cur` plus nodes activated by this cycle's link traversal.
    cur_ext: Vec<u32>,
    /// Messages declared unroutable by this cycle's routing decisions.
    unroutable: HashSet<MessageId>,
    /// Live messages whose flit was caught on a just-dead link.
    dropped: HashSet<MessageId>,
    /// Control deliveries due this cycle.
    due: Vec<ControlDelivery>,
}

/// A flit crossing a shard boundary, parked until the phase barrier.
struct Handoff {
    node: u32,
    port: u8,
    vc: u8,
    flit: Flit,
}

/// A statistics update recorded inside a shard and replayed by the master
/// at the barrier (SimStats is not sharded; all its accumulators commute,
/// and shard-order replay reproduces the sequential update order).
enum StatOp {
    /// Decision-step count of a newly counted routing decision.
    Decision(u64),
    /// A head flit reached its destination with this hop count.
    HeadArrival(MessageId, u32),
    /// A tail ejected: the message is delivered at the current cycle.
    Deliver(MessageId),
}

/// Per-shard working storage: everything a shard produces that crosses its
/// node range is buffered here and applied by the master at the barrier,
/// in shard order.
#[derive(Default)]
struct ShardScratch {
    /// In-shard nodes that received their first flit this cycle.
    newly_active: Vec<u32>,
    /// Flits destined for another shard's input FIFOs.
    handoff: Vec<Handoff>,
    /// Messages whose flit was caught on a just-dead link (pre-filter; the
    /// master applies the liveness check).
    dropped: Vec<MessageId>,
    /// Messages declared unroutable by this shard's routing decisions.
    unroutable: Vec<MessageId>,
    /// Credits to return upstream after switch allocation: `(node, port,
    /// vc)` of the freed input slot.
    credit_returns: Vec<(u32, u8, u8)>,
    /// Trace events in shard-local emission order.
    events: Vec<TraceEvent>,
    /// Stats updates in shard-local order.
    ops: Vec<StatOp>,
    /// Per-input-port "moved a flit this cycle" flags (reused per node).
    used: Vec<bool>,
    /// Whether this shard moved any flit this cycle.
    moved: bool,
}

/// Immutable per-step context shared by every shard.
struct StepCtx<'a> {
    topo: &'a dyn Topology,
    faults: &'a FaultSet,
    cfg: SimConfig,
    vcs: usize,
    degree: usize,
    cycle: u64,
    sink_on: bool,
}

/// Which phase bundle a [`run_shard`] call executes.
#[derive(Clone, Copy)]
enum PhaseKind {
    /// Link traversal: output registers -> downstream input FIFOs.
    Link,
    /// Injection (staging -> injection FIFO) then routing decisions.
    InjectRoute,
    /// Ejection then switch allocation.
    EjectSwitch,
}

/// One shard's slice of the world for a phase run.
struct ShardTask<'a> {
    /// Owned node range `lo..hi`.
    lo: usize,
    hi: usize,
    ch: ChanRef<'a>,
    ctrls: &'a mut [Box<dyn NodeController>],
    scr: &'a mut ShardScratch,
    /// Working set restricted to this shard (global ids, ascending).
    cur: &'a [u32],
    /// Extended working set restricted to this shard.
    cur_ext: &'a [u32],
}

/// Why [`Network::send`] rejected an injection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendError {
    /// The source node is faulty.
    FaultySource,
    /// The destination node is faulty (assumption iii: no messages to
    /// faulty destinations).
    FaultyDestination,
    /// `src == dst` — self-messages never enter the network.
    SelfMessage,
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendError::FaultySource => write!(f, "source node is faulty"),
            SendError::FaultyDestination => write!(f, "destination node is faulty"),
            SendError::SelfMessage => write!(f, "self-messages never enter the network"),
        }
    }
}

impl std::error::Error for SendError {}

/// Source-retransmission policy: killed or unroutable messages are
/// re-injected at their source after a backoff, up to an attempt budget —
/// the end-to-end recovery protocol §2.1 assumes above the router.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total injection attempts allowed per message (1 = no retries).
    pub max_attempts: u32,
    /// Cycles between a worm being ripped and its re-injection.
    pub backoff_cycles: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 4, backoff_cycles: 32 }
    }
}

/// A killed message waiting out its retry backoff.
struct RetryEntry {
    due: u64,
    id: MessageId,
    /// Final-termination cause if the retry is abandoned.
    unroutable: bool,
}

/// Validation failures of [`NetworkBuilder::build`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// `buffer_depth` must be at least one flit.
    ZeroBufferDepth,
    /// The deadlock watchdog threshold must be non-zero.
    ZeroDeadlockThreshold,
    /// The routing algorithm must request at least one virtual channel.
    NoVirtualChannels,
    /// The topology has no nodes.
    EmptyTopology,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::ZeroBufferDepth => write!(f, "buffer_depth must be >= 1 flit"),
            BuildError::ZeroDeadlockThreshold => write!(f, "deadlock_threshold must be >= 1"),
            BuildError::NoVirtualChannels => {
                write!(f, "routing algorithm must use >= 1 virtual channel")
            }
            BuildError::EmptyTopology => write!(f, "topology has no nodes"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Pre-resolved metric handles — looked up once at build so the hot path
/// never touches the registry's name maps.
struct SimMetrics {
    registry: Arc<MetricsRegistry>,
    injected: Counter,
    delivered: Counter,
    killed: Counter,
    unroutable: Counter,
    retried: Counter,
    abandoned: Counter,
    rejected_sends: Counter,
    control_msgs: Counter,
    control_dropped: Counter,
    latency: Histogram,
    hops: Histogram,
    excess_hops: Histogram,
    decision_steps: Histogram,
    buffer_occupancy: Histogram,
}

impl SimMetrics {
    fn new(registry: Arc<MetricsRegistry>) -> Self {
        SimMetrics {
            injected: registry.counter("sim.injected"),
            delivered: registry.counter("sim.delivered"),
            killed: registry.counter("sim.killed"),
            unroutable: registry.counter("sim.unroutable"),
            retried: registry.counter("sim.retried"),
            abandoned: registry.counter("sim.abandoned"),
            rejected_sends: registry.counter("sim.rejected_sends"),
            control_msgs: registry.counter("sim.control_msgs"),
            control_dropped: registry.counter("sim.control_dropped"),
            latency: registry.histogram("sim.latency"),
            hops: registry.histogram("sim.hops"),
            excess_hops: registry.histogram("sim.excess_hops"),
            decision_steps: registry.histogram("sim.decision_steps"),
            buffer_occupancy: registry.histogram("sim.buffer_occupancy"),
            registry,
        }
    }
}

/// How often (in cycles) per-node buffer occupancy is sampled into the
/// metrics registry when one is attached.
const OCCUPANCY_SAMPLE_PERIOD: u64 = 64;

/// Fluent, validated construction of a [`Network`] — the instrumentation
/// seam of the observability layer.
///
/// ```
/// use ftr_sim::{NetworkBuilder, routing::*};
/// # use ftr_sim::flit::Header;
/// use ftr_topo::{Mesh2D, NodeId, PortId, Topology, VcId};
/// use std::sync::Arc;
/// # struct Stay;
/// # struct StayCtl;
/// # impl RoutingAlgorithm for Stay {
/// #     fn name(&self) -> String { "stay".into() }
/// #     fn num_vcs(&self) -> usize { 1 }
/// #     fn controller(&self, _t: &dyn Topology, _n: NodeId) -> Box<dyn NodeController> {
/// #         Box::new(StayCtl)
/// #     }
/// # }
/// # impl NodeController for StayCtl {
/// #     fn route(&mut self, _v: &RouterView<'_>, _h: &mut Header,
/// #              _ip: Option<PortId>, _iv: VcId) -> Decision {
/// #         Decision::new(Verdict::Wait, 1)
/// #     }
/// # }
/// let sink = Arc::new(ftr_obs::RingSink::new(1024));
/// let net = NetworkBuilder::new(Arc::new(Mesh2D::new(4, 4)))
///     .buffer_depth(8)
///     .threads(2) // sharded step; results identical to threads(1)
///     .trace(sink.clone())
///     .build(&Stay)
///     .expect("valid configuration");
/// assert_eq!(net.cycle(), 0);
/// assert_eq!(net.threads(), 2);
/// ```
pub struct NetworkBuilder {
    topo: Arc<dyn Topology>,
    cfg: SimConfig,
    sink: Option<Arc<dyn TraceSink>>,
    metrics: Option<Arc<MetricsRegistry>>,
    retry: Option<RetryPolicy>,
    plan: Option<FaultPlan>,
}

impl NetworkBuilder {
    /// Starts a builder over `topo` with the default [`SimConfig`].
    pub fn new(topo: Arc<dyn Topology>) -> Self {
        NetworkBuilder {
            topo,
            cfg: SimConfig::default(),
            sink: None,
            metrics: None,
            retry: None,
            plan: None,
        }
    }

    /// Replaces the whole engine configuration at once.
    pub fn config(mut self, cfg: SimConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Buffer depth per virtual channel, in flits.
    pub fn buffer_depth(mut self, flits: u32) -> Self {
        self.cfg.buffer_depth = flits;
        self
    }

    /// Cycles one rule-interpretation step costs (§4.3 delay model).
    pub fn decision_cycles_per_step(mut self, cycles: u32) -> Self {
        self.cfg.decision_cycles_per_step = cycles;
        self
    }

    /// Idle cycles (with messages in flight) before the deadlock watchdog
    /// fires.
    pub fn deadlock_threshold(mut self, cycles: u64) -> Self {
        self.cfg.deadlock_threshold = cycles;
        self
    }

    /// Favour fault-misrouted messages in switch allocation (§3).
    pub fn prioritize_misrouted(mut self, on: bool) -> Self {
        self.cfg.prioritize_misrouted = on;
        self
    }

    /// Period (cycles) of the autonomous control-plane tick; `0`
    /// (default) disables [`NodeController::on_tick`] entirely.
    pub fn tick_period(mut self, cycles: u64) -> Self {
        self.cfg.tick_period = cycles;
        self
    }

    /// Worker shards for the sharded step (`1` = sequential, `0` = auto
    /// from [`crate::sweep::worker_count`]). Bit-identical results for
    /// every value; capped at the node count.
    pub fn threads(mut self, n: usize) -> Self {
        self.cfg.threads = n;
        self
    }

    /// Working-set size below which a multi-shard step runs its shards
    /// inline instead of on OS threads (`0` forces OS threads).
    pub fn spawn_threshold(mut self, nodes: usize) -> Self {
        self.cfg.spawn_threshold = nodes;
        self
    }

    /// Attaches a trace sink. With no sink, the network never constructs
    /// a [`TraceEvent`].
    pub fn trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Attaches a metrics registry; the network records its counters and
    /// histograms under `sim.*` names.
    pub fn metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Enables source retransmission of killed/unroutable messages.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Attaches a scripted fault plan the network executes cycle by cycle.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Validates the configuration and builds the network running `algo`
    /// on every node.
    pub fn build(self, algo: &dyn RoutingAlgorithm) -> Result<Network, BuildError> {
        if self.cfg.buffer_depth == 0 {
            return Err(BuildError::ZeroBufferDepth);
        }
        if self.cfg.deadlock_threshold == 0 {
            return Err(BuildError::ZeroDeadlockThreshold);
        }
        let vcs = algo.num_vcs();
        if vcs == 0 {
            return Err(BuildError::NoVirtualChannels);
        }
        let n = self.topo.num_nodes();
        if n == 0 {
            return Err(BuildError::EmptyTopology);
        }
        let degree = self.topo.degree();
        let cfg = self.cfg;
        let threads = if cfg.threads == 0 { crate::sweep::worker_count() } else { cfg.threads };
        let shards = threads.min(n).max(1);
        // contiguous equal-size node ranges: the spatial partition
        let shard_bounds: Vec<usize> = (0..=shards).map(|i| i * n / shards).collect();
        let chans = Channels::new(Geometry::new(n, degree, vcs, cfg.buffer_depth as usize));
        let ctrls = (0..n).map(|i| algo.controller(self.topo.as_ref(), NodeId(i as u32))).collect();
        let stats = SimStats::for_nodes(n);
        Ok(Network {
            topo: self.topo,
            cfg,
            vcs,
            faults: FaultSet::new(),
            chans,
            ctrls,
            control: VecDeque::new(),
            cycle: 0,
            next_msg: 0,
            last_move: 0,
            measuring: false,
            stats,
            sink: self.sink,
            metrics: self.metrics.map(SimMetrics::new),
            retry: self.retry,
            retries: VecDeque::new(),
            plan: self.plan,
            active_mask: vec![false; n],
            active_list: Vec::new(),
            dense_reference: false,
            last_moved: false,
            scratch: StepScratch::default(),
            spawn_threshold: cfg.spawn_threshold,
            shard_bounds,
            shard_scratch: (0..shards).map(|_| ShardScratch::default()).collect(),
        })
    }

    /// Like [`NetworkBuilder::build`], but returns the network behind the
    /// [`crate::engine::SimEngine`] facade.
    pub fn build_engine(
        self,
        algo: &dyn RoutingAlgorithm,
    ) -> Result<Box<dyn crate::engine::SimEngine>, BuildError> {
        Ok(Box::new(self.build(algo)?))
    }
}

/// The simulated network.
pub struct Network {
    topo: Arc<dyn Topology>,
    cfg: SimConfig,
    vcs: usize,
    faults: FaultSet,
    /// All per-node data-path state (FIFOs, routes, credits, registers).
    chans: Channels,
    ctrls: Vec<Box<dyn NodeController>>,
    control: VecDeque<ControlDelivery>,
    cycle: u64,
    next_msg: u64,
    last_move: u64,
    measuring: bool,
    /// Aggregated statistics.
    pub stats: SimStats,
    sink: Option<Arc<dyn TraceSink>>,
    metrics: Option<SimMetrics>,
    retry: Option<RetryPolicy>,
    retries: VecDeque<RetryEntry>,
    plan: Option<FaultPlan>,
    /// Active-set scheduling: `active_mask[n]` ⟺ node `n` is in
    /// `active_list` ⟺ (between steps) node `n` has flit-bearing work.
    /// Every flit source (injection, link traversal, retry re-injection)
    /// marks its node; `step` iterates only the marked set.
    active_mask: Vec<bool>,
    active_list: Vec<u32>,
    /// Retained dense-scan reference path: iterate every node in every
    /// phase, exactly as the pre-active-set engine did. Differential tests
    /// run it in lockstep against the active-set path.
    dense_reference: bool,
    /// Whether the most recent `step` moved any flit.
    last_moved: bool,
    scratch: StepScratch,
    spawn_threshold: usize,
    /// Shard partition: shard `i` owns nodes
    /// `shard_bounds[i]..shard_bounds[i + 1]`.
    shard_bounds: Vec<usize>,
    shard_scratch: Vec<ShardScratch>,
}

impl Network {
    /// Starts a [`NetworkBuilder`] over `topo`.
    pub fn builder(topo: Arc<dyn Topology>) -> NetworkBuilder {
        NetworkBuilder::new(topo)
    }

    /// Emits a trace event; the closure only runs when a sink is attached
    /// (zero-cost-when-disabled contract).
    #[inline]
    fn emit(&self, kind: impl FnOnce() -> EventKind) {
        if let Some(sink) = &self.sink {
            sink.record(&TraceEvent { cycle: self.cycle, kind: kind() });
        }
    }

    /// The attached trace sink, if any.
    pub fn trace_sink(&self) -> Option<&Arc<dyn TraceSink>> {
        self.sink.as_ref()
    }

    /// The attached metrics registry, if any.
    pub fn metrics_registry(&self) -> Option<&Arc<MetricsRegistry>> {
        self.metrics.as_ref().map(|m| &m.registry)
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Number of shards the step partitions the network into (1 = the
    /// sequential engine).
    pub fn threads(&self) -> usize {
        self.shard_bounds.len() - 1
    }

    /// Switches `step` onto the dense-scan reference path (every phase
    /// iterates every node, as the pre-active-set engine did). The two
    /// paths are observably identical — same `SimStats`, same trace-event
    /// stream, same per-cycle movement — which the lockstep differential
    /// tests enforce; the dense path exists as that test's oracle and as a
    /// debugging fallback. Switching is safe at any cycle boundary.
    pub fn set_dense_reference(&mut self, on: bool) {
        self.dense_reference = on;
    }

    /// Whether the most recent [`Network::step`] moved any flit (link
    /// traversal, injection, ejection or switch). Differential tests
    /// compare this per cycle across step paths.
    pub fn last_step_moved(&self) -> bool {
        self.last_moved
    }

    /// Nodes currently in the active set (ascending order; diagnostics).
    pub fn active_nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<u32> = self.active_list.clone();
        v.sort_unstable();
        v.into_iter().map(NodeId).collect()
    }

    /// Whether node `n` holds any flit-bearing work (diagnostics).
    pub fn node_has_work(&self, n: NodeId) -> bool {
        self.chans.has_work(n.idx())
    }

    /// Whether the output link register of `(n, p)` holds an in-flight
    /// flit (diagnostics).
    pub fn output_register_occupied(&self, n: NodeId, p: PortId) -> bool {
        self.chans.out_reg(n.idx(), p.idx()).is_some()
    }

    /// Marks a node as having flit-bearing work. Idempotent; every path
    /// that hands a node a flit (injection, retry re-injection, link
    /// traversal) must call this or the active-set scheduler would strand
    /// the flit.
    #[inline]
    fn mark_active(&mut self, ni: usize) {
        if !self.active_mask[ni] {
            self.active_mask[ni] = true;
            self.active_list.push(ni as u32);
        }
    }

    /// The topology.
    pub fn topo(&self) -> &dyn Topology {
        self.topo.as_ref()
    }

    /// Ground-truth fault set.
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// Marks subsequently injected messages as part of the measurement
    /// window (and records the window length).
    pub fn set_measuring(&mut self, on: bool) {
        self.measuring = on;
    }

    /// Adds to the measured-cycles count used for throughput.
    pub fn add_measured_cycles(&mut self, c: u64) {
        self.stats.measured_cycles += c;
    }

    /// Injects a message at `src` for `dst`.
    ///
    /// An injection involving a faulty endpoint — a scheduled send racing a
    /// dynamic fault — is rejected with a [`SendError`] and counted in
    /// [`SimStats::rejected_sends`] instead of aborting the run (assumption
    /// iii: no messages to faulty nodes). Self-messages are a programming
    /// error and additionally panic in debug builds.
    pub fn send(
        &mut self,
        src: NodeId,
        dst: NodeId,
        len_flits: u32,
    ) -> Result<MessageId, SendError> {
        if src == dst {
            debug_assert!(src != dst, "self-messages never enter the network");
            self.stats.rejected_sends += 1;
            return Err(SendError::SelfMessage);
        }
        let err = if self.faults.node_faulty(src) {
            Some(SendError::FaultySource)
        } else if self.faults.node_faulty(dst) {
            Some(SendError::FaultyDestination)
        } else {
            None
        };
        if let Some(e) = err {
            self.stats.rejected_sends += 1;
            self.emit(|| EventKind::SendRejected { src, dst });
            if let Some(m) = &self.metrics {
                m.rejected_sends.inc();
            }
            return Err(e);
        }
        let id = MessageId(self.next_msg);
        self.next_msg += 1;
        let header = Header::new(id, src, dst, len_flits);
        self.stats.on_inject(
            id,
            MsgMeta {
                inject_cycle: self.cycle,
                src,
                dst,
                len_flits: len_flits.max(1),
                measured: self.measuring,
                hops: 0,
                min_dist: self.topo.min_distance(src, dst),
                attempts: 1,
            },
        );
        self.emit(|| EventKind::Inject { msg: id.0, src, dst, len_flits });
        if let Some(m) = &self.metrics {
            m.injected.inc();
        }
        self.chans.staging_mut(src.idx()).extend(Flit::sequence(header));
        self.mark_active(src.idx());
        Ok(id)
    }

    /// Attaches (or replaces) a scripted fault plan mid-run; actions whose
    /// cycle already passed fire on the next step.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.plan = Some(plan);
    }

    /// Enables, replaces or (with `None`) disables source retransmission.
    /// Messages already waiting out a backoff keep their schedule.
    pub fn set_retry_policy(&mut self, policy: Option<RetryPolicy>) {
        self.retry = policy;
    }

    /// The active retry policy, if any.
    pub fn retry_policy(&self) -> Option<RetryPolicy> {
        self.retry
    }

    /// Messages in flight (injected, not yet terminated).
    pub fn in_flight(&self) -> usize {
        self.stats.in_flight()
    }

    // ------------------------------------------------------------ faults

    /// Fails the link leaving `n` through `p` at the current cycle: rips
    /// the worms spanning it, notifies both endpoint controllers, and
    /// starts control-plane propagation.
    pub fn inject_link_fault(&mut self, n: NodeId, p: PortId) {
        if let Some((m, q)) = self.link_fault_physical(n, p) {
            self.notify_fault(n, p);
            self.notify_fault(m, q);
        }
    }

    /// Fails the link leaving `n` through `p` *silently*: identical
    /// physical effect (worms ripped, link unusable, trace event) but no
    /// `on_fault` notification — no-oracle mode, where the endpoints must
    /// detect the loss through the heartbeat layer.
    pub fn inject_link_fault_silent(&mut self, n: NodeId, p: PortId) {
        self.link_fault_physical(n, p);
    }

    /// Physical half of a link fault; returns the far endpoint `(m, q)`
    /// when the link exists.
    fn link_fault_physical(&mut self, n: NodeId, p: PortId) -> Option<(NodeId, PortId)> {
        let m = self.topo.neighbor(n, p)?;
        let q = self.topo.port_towards(m, n).expect("reverse port");
        self.faults.fail_link(self.topo.as_ref(), n, p);
        self.emit(|| EventKind::LinkFault { node: n, port: p });

        let mut dead: HashSet<MessageId> = HashSet::new();
        for (node, port) in [(n, p), (m, q)] {
            if let Some((_, f)) = self.chans.out_reg(node.idx(), port.idx()) {
                dead.insert(f.msg);
            }
            // messages with flits in the FIFO fed by the dead link are
            // still streaming over it unless their tail already crossed
            for v in 0..self.vcs {
                let flits: Vec<Flit> =
                    self.chans.fifo_iter(node.idx(), port.idx(), v).copied().collect();
                for f in &flits {
                    let crossed = flits.iter().any(|g| {
                        g.msg == f.msg
                            && (matches!(g.kind, FlitKind::Tail)
                                || matches!(g.kind, FlitKind::Head(h) if h.len_flits <= 1))
                    });
                    if !crossed {
                        dead.insert(f.msg);
                    }
                }
            }
            // worms routed OUT across the dead link: the output-channel
            // owner tracks the holding message even when its flits are all
            // in flight elsewhere
            for v in 0..self.vcs {
                if let Some(owner) = self.chans.out_owner(node.idx(), port.idx(), v) {
                    dead.insert(owner);
                }
            }
        }
        self.kill_messages(&dead, false);
        Some((m, q))
    }

    /// Fails node `n`: rips every worm touching it, kills in-flight
    /// messages destined to it, and notifies all alive neighbours.
    pub fn inject_node_fault(&mut self, n: NodeId) {
        self.node_fault_physical(n);
        for (p, nb) in self.topo.neighbors(n) {
            if !self.faults.node_faulty(nb) {
                let q = self.topo.port_towards(nb, n).expect("reverse");
                self.notify_fault(nb, q);
            }
            let _ = p;
        }
    }

    /// Fails node `n` *silently*: identical physical effect but no
    /// neighbour `on_fault` notification — a Byzantine-silent node that
    /// simply stops participating (no-oracle mode).
    pub fn inject_node_fault_silent(&mut self, n: NodeId) {
        self.node_fault_physical(n);
    }

    /// Physical half of a node fault.
    fn node_fault_physical(&mut self, n: NodeId) {
        self.faults.fail_node(n);
        self.emit(|| EventKind::NodeFault { node: n });
        let geo = self.chans.geo();
        let mut dead: HashSet<MessageId> = HashSet::new();
        // everything buffered in the dead node
        for ip in 0..=geo.degree {
            for iv in 0..geo.vcs_at(ip) {
                for f in self.chans.fifo_iter(n.idx(), ip, iv) {
                    dead.insert(f.msg);
                }
            }
        }
        for p in 0..geo.degree {
            if let Some((_, f)) = self.chans.out_reg(n.idx(), p) {
                dead.insert(f.msg);
            }
        }
        for f in self.chans.staging(n.idx()) {
            dead.insert(f.msg);
        }
        // worms at neighbours routed into the dead node (tracked by the
        // output-channel owners), flits mid-flight towards it, and messages
        // destined to it anywhere in the network
        for node in self.topo.nodes() {
            for p in 0..geo.degree {
                if self.topo.neighbor(node, PortId(p as u8)) == Some(n) {
                    for v in 0..geo.vcs {
                        if let Some(owner) = self.chans.out_owner(node.idx(), p, v) {
                            dead.insert(owner);
                        }
                    }
                    if let Some((_, f)) = self.chans.out_reg(node.idx(), p) {
                        dead.insert(f.msg);
                    }
                }
            }
            for ip in 0..=geo.degree {
                for iv in 0..geo.vcs_at(ip) {
                    for f in self.chans.fifo_iter(node.idx(), ip, iv) {
                        if let Some(h) = f.header() {
                            if h.dst == n {
                                dead.insert(f.msg);
                            }
                        }
                    }
                }
            }
            for p in 0..geo.degree {
                if let Some((_, f)) = self.chans.out_reg(node.idx(), p) {
                    if let Some(h) = f.header() {
                        if h.dst == n {
                            dead.insert(f.msg);
                        }
                    }
                }
            }
            for f in self.chans.staging(node.idx()) {
                if let Some(h) = f.header() {
                    if h.dst == n {
                        dead.insert(f.msg);
                    }
                }
            }
        }
        self.kill_messages(&dead, false);
    }

    /// Repairs the link leaving `n` through `p`: re-arms it in the fault
    /// set, emits a [`EventKind::LinkRepair`] and — when the link is
    /// actually usable again (both endpoints alive) — notifies both
    /// endpoint controllers through [`NodeController::on_repair`] so they
    /// can un-learn their monotone fault knowledge. No-op for unconnected
    /// ports and healthy links.
    pub fn repair_link(&mut self, n: NodeId, p: PortId) {
        if let Some((m, q)) = self.link_repair_physical(n, p) {
            self.notify_repair(n, p);
            self.notify_repair(m, q);
        }
    }

    /// Repairs the link leaving `n` through `p` *silently*: the link
    /// carries traffic again but no `on_repair` fires — controllers
    /// re-learn through resumed liveness probes (no-oracle mode).
    pub fn repair_link_silent(&mut self, n: NodeId, p: PortId) {
        self.link_repair_physical(n, p);
    }

    /// Physical half of a link repair; returns the far endpoint `(m, q)`
    /// when the repaired link is usable again (both endpoints alive).
    fn link_repair_physical(&mut self, n: NodeId, p: PortId) -> Option<(NodeId, PortId)> {
        let m = self.topo.neighbor(n, p)?;
        if !self.faults.link_faulty(self.topo.as_ref(), n, p) {
            return None;
        }
        let l = self.topo.link(n, p)?;
        self.faults.repair_link(l);
        self.emit(|| EventKind::LinkRepair { node: n, port: p });
        if self.faults.link_usable(self.topo.as_ref(), n, p) {
            let q = self.topo.port_towards(m, n).expect("reverse port");
            Some((m, q))
        } else {
            None
        }
    }

    /// Repairs node `n`: re-arms it with a fresh (rebooted) router and
    /// notifies its controller and every alive neighbour on each incident
    /// healthy link. The repaired node's controller keeps its accumulated
    /// state — algorithms reset it in [`NodeController::on_repair`].
    pub fn repair_node(&mut self, n: NodeId) {
        if !self.node_repair_physical(n) {
            return;
        }
        for (p, nb) in self.topo.neighbors(n) {
            if self.faults.link_usable(self.topo.as_ref(), n, p) {
                let q = self.topo.port_towards(nb, n).expect("reverse");
                self.notify_repair(n, p);
                self.notify_repair(nb, q);
            }
        }
    }

    /// Repairs node `n` *silently*: hardware comes back empty but no
    /// `on_repair` notifications fire anywhere (no-oracle mode).
    pub fn repair_node_silent(&mut self, n: NodeId) {
        self.node_repair_physical(n);
    }

    /// Physical half of a node repair; true if the node was faulty.
    fn node_repair_physical(&mut self, n: NodeId) -> bool {
        if !self.faults.node_faulty(n) {
            return false;
        }
        self.faults.repair_node(n);
        self.emit(|| EventKind::NodeRepair { node: n });
        // the router hardware comes back empty: fresh buffers, credits and
        // allocation state (everything it held was killed at fault time)
        self.chans.reset_node(n.idx());
        self.recompute_credits_and_loads();
        true
    }

    fn notify_repair(&mut self, node: NodeId, port: PortId) {
        if self.faults.node_faulty(node) {
            return;
        }
        let view_data = self.view_data(node);
        let view = view_data.view(node, self.cycle);
        let msgs = self.ctrls[node.idx()].on_repair(&view, port);
        self.flush_controller_events(node);
        self.enqueue_control(node, msgs);
    }

    /// Applies a whole static fault set (links then nodes), triggering the
    /// usual controller notifications and control-plane propagation.
    pub fn apply_fault_set(&mut self, fs: &FaultSet) {
        for l in fs.faulty_links().collect::<Vec<_>>() {
            self.inject_link_fault(l.node, l.port);
        }
        for n in fs.faulty_nodes().collect::<Vec<_>>() {
            self.inject_node_fault(n);
        }
    }

    /// Queries a controller's full routing relation under an idealised
    /// all-free view (used by deadlock and conditions analyses).
    pub fn query_relation(
        &mut self,
        n: NodeId,
        header: &Header,
        in_port: Option<PortId>,
        in_vc: VcId,
    ) -> Vec<(PortId, VcId)> {
        let degree = self.topo.degree();
        let mut out_free = vec![vec![true; self.vcs]; degree];
        let mut link_alive = vec![false; degree];
        for p in 0..degree {
            let alive = self.faults.link_usable(self.topo.as_ref(), n, PortId(p as u8));
            link_alive[p] = alive;
            if !alive {
                out_free[p] = vec![false; self.vcs];
            }
        }
        let out_load = vec![0u32; degree];
        let view = RouterView {
            node: n,
            cycle: self.cycle,
            out_free: &out_free,
            out_load: &out_load,
            link_alive: &link_alive,
        };
        self.ctrls[n.idx()].relation(&view, header, in_port, in_vc)
    }

    fn notify_fault(&mut self, node: NodeId, port: PortId) {
        if self.faults.node_faulty(node) {
            return;
        }
        let view_data = self.view_data(node);
        let view = view_data.view(node, self.cycle);
        let msgs = self.ctrls[node.idx()].on_fault(&view, port);
        self.flush_controller_events(node);
        self.enqueue_control(node, msgs);
    }

    /// Records trace events a controller produced inside a control-plane
    /// hook (detector heartbeats/suspicions/alarms), stamped with the
    /// current cycle. Skipped entirely without a sink — the default
    /// [`NodeController::drain_events`] allocates nothing either way.
    fn flush_controller_events(&mut self, n: NodeId) {
        if self.sink.is_none() {
            return;
        }
        for kind in self.ctrls[n.idx()].drain_events() {
            self.emit(|| kind);
        }
    }

    /// Counts (and traces) a control-plane message discarded because the
    /// link through `port` at `node` was unusable — at send time or while
    /// the words were on the wire.
    fn drop_control(&mut self, node: NodeId, port: PortId) {
        self.stats.control_dropped += 1;
        self.emit(|| EventKind::ControlDrop { node, port });
        if let Some(m) = &self.metrics {
            m.control_dropped.inc();
        }
    }

    fn enqueue_control(&mut self, from: NodeId, msgs: Vec<ControlMsg>) {
        for msg in msgs {
            if !self.faults.link_usable(self.topo.as_ref(), from, msg.port) {
                // control messages need healthy links too; account for the
                // loss instead of discarding silently
                self.drop_control(from, msg.port);
                continue;
            }
            let to = self.topo.neighbor(from, msg.port).expect("usable link");
            let from_port = self.topo.port_towards(to, from).expect("reverse");
            self.stats.control_msgs += 1;
            self.emit(|| EventKind::ControlSend { from, to });
            if let Some(m) = &self.metrics {
                m.control_msgs.inc();
            }
            self.control.push_back(ControlDelivery {
                due: self.cycle + 1,
                to,
                from_port,
                payload: msg.payload,
            });
        }
    }

    /// Runs only the control plane until it goes quiet; returns the number
    /// of cycles it took, or `None` if `budget` was exhausted (E10
    /// settling-time experiment).
    pub fn settle_control(&mut self, budget: u64) -> Option<u64> {
        let start = self.cycle;
        while !self.control.is_empty() {
            if self.cycle - start >= budget {
                return None;
            }
            self.step();
        }
        let took = self.cycle - start;
        self.emit(|| EventKind::ControlSettled { cycles: took });
        Some(took)
    }

    /// Kills a set of messages network-wide (ripped worms / unroutable).
    fn kill_messages(&mut self, ids: &HashSet<MessageId>, unroutable: bool) {
        if ids.is_empty() {
            return;
        }
        let geo = self.chans.geo();
        {
            let mut ch = self.chans.full_mut();
            for n in 0..geo.nodes {
                ch.staging_mut(n).retain(|f| !ids.contains(&f.msg));
                for ip in 0..=geo.degree {
                    for iv in 0..geo.vcs_at(ip) {
                        // a route whose flits are all in flight is
                        // identified through the output-channel owner;
                        // otherwise through the FIFO front
                        let stale = match ch.route(n, ip, iv) {
                            RouteState::Out(p, v) => {
                                ch.out_owner(n, p.idx(), v.idx()).is_some_and(|m| ids.contains(&m))
                            }
                            _ => false,
                        };
                        let front_dead =
                            ch.fifo_front(n, ip, iv).is_some_and(|f| ids.contains(&f.msg));
                        ch.fifo_retain(n, ip, iv, |f| !ids.contains(&f.msg));
                        if front_dead || stale {
                            ch.reset_route(n, ip, iv);
                        }
                    }
                }
                for p in 0..geo.degree {
                    for v in 0..geo.vcs {
                        if ch.out_owner(n, p, v).is_some_and(|m| ids.contains(&m)) {
                            ch.set_out_owner(n, p, v, None);
                        }
                    }
                    if ch.out_reg(n, p).is_some_and(|(_, f)| ids.contains(&f.msg)) {
                        ch.set_out_reg(n, p, None);
                    }
                }
            }
        }
        // id order, not HashSet order: trace events and retry scheduling
        // must not depend on per-instance hasher state (lockstep
        // differential tests compare event streams across two networks)
        let mut ordered: Vec<MessageId> = ids.iter().copied().collect();
        ordered.sort_unstable();
        for id in ordered {
            // retry policy: the ripped worm stays logically in flight (same
            // id, same first-attempt inject cycle) and re-enters at its
            // source after the backoff, as long as attempts remain
            let retryable = match (&self.retry, self.stats.meta(id)) {
                (Some(rp), Some(meta)) => meta.attempts < rp.max_attempts,
                _ => false,
            };
            if retryable {
                let backoff = self.retry.expect("checked").backoff_cycles.max(1);
                self.retries.push_back(RetryEntry { due: self.cycle + backoff, id, unroutable });
            }
            if unroutable {
                self.emit(|| EventKind::Unroutable { msg: id.0 });
            } else {
                self.emit(|| EventKind::Kill { msg: id.0 });
            }
            if retryable {
                continue;
            }
            if unroutable {
                self.stats.on_unroutable(id);
            } else {
                self.stats.on_kill(id);
            }
            if self.retry.is_some() {
                self.stats.abandoned_msgs += 1;
                if let Some(m) = &self.metrics {
                    m.abandoned.inc();
                }
            }
            if let Some(m) = &self.metrics {
                if unroutable {
                    m.unroutable.inc();
                } else {
                    m.killed.inc();
                }
            }
        }
        self.recompute_credits_and_loads();
    }

    /// Executes fault-plan actions due at the current cycle.
    fn run_plan(&mut self) {
        let Some(plan) = &mut self.plan else { return };
        let due: Vec<_> = plan.pop_due(self.cycle).to_vec();
        for pa in due {
            match pa.action {
                FaultAction::FailLink(n, p) => self.inject_link_fault(n, p),
                FaultAction::RepairLink(n, p) => self.repair_link(n, p),
                FaultAction::FailNode(n) => self.inject_node_fault(n),
                FaultAction::RepairNode(n) => self.repair_node(n),
                FaultAction::FailLinkSilent(n, p) => self.inject_link_fault_silent(n, p),
                FaultAction::RepairLinkSilent(n, p) => self.repair_link_silent(n, p),
                FaultAction::FailNodeSilent(n) => self.inject_node_fault_silent(n),
                FaultAction::RepairNodeSilent(n) => self.repair_node_silent(n),
            }
        }
    }

    /// Re-injects messages whose retry backoff elapsed; abandons them when
    /// an endpoint is (still) faulty — end-to-end retransmission cannot
    /// proceed without both endpoints, and waiting indefinitely would stall
    /// the drain loop.
    fn run_retries(&mut self) {
        while self.retries.front().is_some_and(|r| r.due <= self.cycle) {
            let r = self.retries.pop_front().expect("checked");
            let Some(meta) = self.stats.meta(r.id).copied() else { continue };
            if self.faults.node_faulty(meta.src) || self.faults.node_faulty(meta.dst) {
                if r.unroutable {
                    self.stats.on_unroutable(r.id);
                } else {
                    self.stats.on_kill(r.id);
                }
                self.stats.abandoned_msgs += 1;
                if let Some(m) = &self.metrics {
                    m.abandoned.inc();
                    if r.unroutable {
                        m.unroutable.inc();
                    } else {
                        m.killed.inc();
                    }
                }
                continue;
            }
            self.stats.on_retry(r.id);
            let attempt = meta.attempts + 1;
            self.emit(|| EventKind::Retry { msg: r.id.0, attempt });
            if let Some(m) = &self.metrics {
                m.retried.inc();
            }
            let header = Header::new(r.id, meta.src, meta.dst, meta.len_flits);
            self.chans.staging_mut(meta.src.idx()).extend(Flit::sequence(header));
            self.mark_active(meta.src.idx());
        }
    }

    /// Rebuilds credit counters and adaptivity loads from buffer occupancy
    /// (used after worm kills, which invalidate incremental accounting).
    fn recompute_credits_and_loads(&mut self) {
        let topo = Arc::clone(&self.topo);
        let geo = self.chans.geo();
        let depth = self.cfg.buffer_depth;
        let mut ch = self.chans.full_mut();
        for n in topo.nodes() {
            for p in topo.ports() {
                let Some(m) = topo.neighbor(n, p) else { continue };
                let q = topo.port_towards(m, n).expect("reverse");
                for v in 0..geo.vcs {
                    let occupied = ch.fifo_len(m.idx(), q.idx(), v) as u32;
                    let in_flight = matches!(ch.out_reg(n.idx(), p.idx()), Some((vc, _)) if vc.idx() == v)
                        as u32;
                    ch.set_out_credits(n.idx(), p.idx(), v, depth - occupied - in_flight);
                }
            }
        }
        for n in 0..geo.nodes {
            for p in 0..geo.degree {
                ch.set_out_assigned(n, p, 0);
            }
            for ip in 0..=geo.degree {
                for iv in 0..geo.vcs_at(ip) {
                    if let RouteState::Out(p, _) = ch.route(n, ip, iv) {
                        let buffered = ch.fifo_len(n, ip, iv) as u32;
                        ch.add_out_assigned(n, p.idx(), buffered);
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------- views

    fn view_data(&self, n: NodeId) -> ViewData {
        let degree = self.topo.degree();
        let ni = n.idx();
        let mut out_free = vec![vec![false; self.vcs]; degree];
        let mut link_alive = vec![false; degree];
        for p in 0..degree {
            let alive = self.faults.link_usable(self.topo.as_ref(), n, PortId(p as u8));
            link_alive[p] = alive;
            if alive {
                for v in 0..self.vcs {
                    out_free[p][v] = self.chans.out_channel_free(ni, p, v);
                }
            }
        }
        let mut out_load = vec![0u32; degree];
        for p in 0..degree {
            out_load[p] =
                self.chans.out_assigned(ni, p) + self.chans.out_reg(ni, p).is_some() as u32;
        }
        ViewData { out_free, out_load, link_alive }
    }

    // -------------------------------------------------------------- step

    /// Advances the network one cycle.
    ///
    /// Every phase iterates the *active set* — the nodes holding staged,
    /// buffered or in-register flits — instead of dense-scanning the whole
    /// topology; see `DESIGN.md` §12 for the activation invariants. The
    /// retained dense scan ([`Network::set_dense_reference`]) is observably
    /// identical and serves as the differential-testing oracle. With more
    /// than one shard the phases run in parallel over disjoint node ranges
    /// and the cross-shard effects merge at conservative barriers, in
    /// shard order — bit-identical to the sequential engine (`DESIGN.md`
    /// §14).
    pub fn step(&mut self) {
        // 0. scripted fault-plan actions and due retry re-injections
        self.run_plan();
        self.run_retries();

        // periodic buffer-occupancy sampling (only when metrics attached);
        // cycle 0 — before any traffic can have entered the network — is
        // skipped so short runs don't skew the histogram's low bins with a
        // guaranteed all-zero sample per node
        if let Some(m) = &self.metrics {
            if self.cycle != 0 && self.cycle.is_multiple_of(OCCUPANCY_SAMPLE_PERIOD) {
                for ni in 0..self.chans.geo().nodes {
                    m.buffer_occupancy.observe(self.chans.buffered_flits(ni) as u64);
                }
            }
        }

        // 0.5 autonomous control-plane tick (heartbeats, suspicion
        // bookkeeping) — ascending node order for determinism, live nodes
        // only; disabled unless a tick period was configured
        if self.cfg.tick_period != 0 && self.cycle.is_multiple_of(self.cfg.tick_period) {
            for i in 0..self.ctrls.len() {
                let n = NodeId(i as u32);
                if self.faults.node_faulty(n) {
                    continue;
                }
                let vd = self.view_data(n);
                let view = vd.view(n, self.cycle);
                let msgs = self.ctrls[i].on_tick(&view, self.cycle);
                self.flush_controller_events(n);
                self.enqueue_control(n, msgs);
            }
        }

        // 1. control-plane deliveries due this cycle
        let mut due = std::mem::take(&mut self.scratch.due);
        while self.control.front().is_some_and(|d| d.due <= self.cycle) {
            due.push(self.control.pop_front().expect("checked"));
        }
        for d in due.drain(..) {
            if self.faults.node_faulty(d.to) {
                continue;
            }
            // time-of-send vs time-of-delivery: the traversed link (and
            // with it the sender node) must still be usable NOW — a link
            // that died after the send at cycle C never lands its words
            // at C+1
            if !self.faults.link_usable(self.topo.as_ref(), d.to, d.from_port) {
                self.drop_control(d.to, d.from_port);
                continue;
            }
            let vd = self.view_data(d.to);
            let view = vd.view(d.to, self.cycle);
            let replies = self.ctrls[d.to.idx()].on_control(&view, d.from_port, &d.payload);
            self.flush_controller_events(d.to);
            self.enqueue_control(d.to, replies);
        }
        self.scratch.due = due;

        // the cycle's working set: ascending node order matches the dense
        // scan, so phase iteration order — and thus arbitration and the
        // trace-event stream — is independent of activation history
        let mut cur = std::mem::take(&mut self.scratch.cur);
        cur.clear();
        if self.dense_reference {
            cur.extend(0..self.chans.geo().nodes as u32);
        } else {
            self.active_list.sort_unstable();
            cur.append(&mut self.active_list);
        }
        for scr in &mut self.shard_scratch {
            scr.moved = false;
        }

        // 2. link traversal: output registers -> downstream input FIFOs
        // (cross-shard arrivals park in the handoff queues and apply at
        // the barrier, in shard order = ascending sender order)
        self.run_phase(PhaseKind::Link, &cur, &cur);
        self.apply_handoffs_and_marks();
        self.merge_dropped_and_kill();

        // nodes that received their first flit during link traversal must
        // route and arbitrate it THIS cycle, exactly as the dense scan does
        let mut cur_ext = std::mem::take(&mut self.scratch.cur_ext);
        cur_ext.clear();
        cur_ext.extend_from_slice(&cur);
        if !self.dense_reference && !self.active_list.is_empty() {
            cur_ext.append(&mut self.active_list);
            cur_ext.sort_unstable();
        }

        // 3. injection (staging -> injection FIFO) + 4. routing decisions;
        // both touch only node-local state, so they fuse into one parallel
        // phase — injection over `cur`, routing over `cur_ext`
        self.run_phase(PhaseKind::InjectRoute, &cur, &cur_ext);
        self.flush_shards();
        self.merge_unroutable_and_kill();

        // 5. ejection + switch allocation
        self.run_phase(PhaseKind::EjectSwitch, &cur, &cur_ext);
        self.flush_shards();
        self.apply_credit_returns();

        let moved = self.shard_scratch.iter().any(|s| s.moved);

        // 6. watchdog (messages waiting out a retry backoff are in flight
        // but legitimately motionless — not a deadlock)
        if moved {
            self.last_move = self.cycle;
        } else if self.in_flight() > self.retries.len()
            && self.cycle - self.last_move >= self.cfg.deadlock_threshold
        {
            self.stats.deadlock = true;
        }
        self.last_moved = moved;

        // prune the active set: drop nodes whose work drained (delivered,
        // killed, or every flit handed downstream). A node only re-enters
        // through mark_active, so mask ⟺ list ⟺ has-work holds at every
        // cycle boundary. The dense path rebuilds the bookkeeping exactly,
        // keeping mode switches safe at any boundary.
        if self.dense_reference {
            // the dense scan ignores marks made during the step (send,
            // link arrivals); its working set covers every node, so the
            // rebuild below recreates mask and list from scratch
            self.active_list.clear();
        }
        debug_assert!(self.active_list.is_empty());
        for &ni in &cur_ext {
            let ni = ni as usize;
            let w = self.chans.has_work(ni);
            self.active_mask[ni] = w;
            if w {
                self.active_list.push(ni as u32);
            }
        }
        cur.clear();
        self.scratch.cur = cur;
        cur_ext.clear();
        self.scratch.cur_ext = cur_ext;

        self.cycle += 1;
    }

    /// Runs one phase over every shard — inline when the working set is
    /// small (or there is a single shard), on scoped OS threads otherwise.
    /// Shards only touch their own node range; anything that crosses a
    /// boundary lands in the shard's scratch for the master to merge.
    fn run_phase(&mut self, phase: PhaseKind, cur: &[u32], cur_ext: &[u32]) {
        let degree = self.topo.degree();
        let ctx = StepCtx {
            topo: self.topo.as_ref(),
            faults: &self.faults,
            cfg: self.cfg,
            vcs: self.vcs,
            degree,
            cycle: self.cycle,
            sink_on: self.sink.is_some(),
        };
        let views = self.chans.split_mut(&self.shard_bounds);
        let mut ctrls = self.ctrls.as_mut_slice();
        let mut tasks: Vec<ShardTask<'_>> = Vec::with_capacity(views.len());
        for ((ch, scr), w) in
            views.into_iter().zip(self.shard_scratch.iter_mut()).zip(self.shard_bounds.windows(2))
        {
            let (lo, hi) = (w[0], w[1]);
            let (head, rest) = ctrls.split_at_mut(hi - lo);
            ctrls = rest;
            tasks.push(ShardTask {
                lo,
                hi,
                ch,
                ctrls: head,
                scr,
                cur: sub_range(cur, lo, hi),
                cur_ext: sub_range(cur_ext, lo, hi),
            });
        }
        let spawn = tasks.len() > 1 && cur_ext.len() >= self.spawn_threshold;
        if !spawn {
            for t in tasks.iter_mut() {
                run_shard(&ctx, phase, t);
            }
        } else {
            let ctx_ref = &ctx;
            crossbeam::thread::scope(|s| {
                let (first, rest) = tasks.split_first_mut().expect("at least one shard");
                for t in rest.iter_mut() {
                    s.spawn(move |_| run_shard(ctx_ref, phase, t));
                }
                run_shard(ctx_ref, phase, first);
            })
            .expect("simulation shard panicked");
        }
    }

    /// Barrier after link traversal: applies cross-shard flit handoffs and
    /// activation marks, in shard order (= ascending sender order, which
    /// is what the sequential scan produced).
    fn apply_handoffs_and_marks(&mut self) {
        for si in 0..self.shard_scratch.len() {
            let handoff = std::mem::take(&mut self.shard_scratch[si].handoff);
            {
                let mut ch = self.chans.full_mut();
                for h in &handoff {
                    ch.fifo_push_back(h.node as usize, h.port as usize, h.vc as usize, h.flit);
                }
            }
            for h in &handoff {
                self.mark_active(h.node as usize);
            }
            let mut handoff = handoff;
            handoff.clear();
            self.shard_scratch[si].handoff = handoff;
            let newly = std::mem::take(&mut self.shard_scratch[si].newly_active);
            for &ni in &newly {
                self.mark_active(ni as usize);
            }
            let mut newly = newly;
            newly.clear();
            self.shard_scratch[si].newly_active = newly;
        }
    }

    /// Barrier after link traversal, part 2: flits caught on just-dead
    /// links. The shards report candidates; the master applies the
    /// liveness gate and the kill, exactly as the sequential loop did.
    fn merge_dropped_and_kill(&mut self) {
        let mut any = false;
        for si in 0..self.shard_scratch.len() {
            let dropped = std::mem::take(&mut self.shard_scratch[si].dropped);
            for &msg in &dropped {
                // flit caught on a just-failed link. The fault injector
                // rips every worm touching a dying link, so the message is
                // normally already killed and untracked; if it IS still
                // live (a fault path that missed the worm), dropping the
                // flit silently would leak the message — stats accounting
                // would never balance and drain() would hang. Kill it
                // through the normal path instead.
                if self.stats.tracks(msg) {
                    self.stats.flits_dropped_on_dead_link += 1;
                    self.scratch.dropped.insert(msg);
                    any = true;
                }
            }
            let mut dropped = dropped;
            dropped.clear();
            self.shard_scratch[si].dropped = dropped;
        }
        if any {
            let dropped = std::mem::take(&mut self.scratch.dropped);
            self.kill_messages(&dropped, false);
            self.scratch.dropped = dropped;
            self.scratch.dropped.clear();
        }
    }

    /// Barrier after routing: merges per-shard unroutable verdicts and
    /// kills them (trace/retry order is id-sorted inside kill_messages, so
    /// the merge order does not leak).
    fn merge_unroutable_and_kill(&mut self) {
        let mut unroutable = std::mem::take(&mut self.scratch.unroutable);
        for scr in &mut self.shard_scratch {
            unroutable.extend(scr.unroutable.drain(..));
        }
        self.kill_messages(&unroutable, true);
        unroutable.clear();
        self.scratch.unroutable = unroutable;
    }

    /// Drains per-shard trace events into the sink and replays per-shard
    /// stats ops, in shard order — concatenating the shard-local streams
    /// reproduces the sequential ascending-node emission order.
    fn flush_shards(&mut self) {
        for si in 0..self.shard_scratch.len() {
            let mut events = std::mem::take(&mut self.shard_scratch[si].events);
            if let Some(sink) = &self.sink {
                for e in &events {
                    sink.record(e);
                }
            }
            events.clear();
            self.shard_scratch[si].events = events;
            let mut ops = std::mem::take(&mut self.shard_scratch[si].ops);
            for op in ops.drain(..) {
                match op {
                    StatOp::Decision(steps) => {
                        self.stats.decision_steps.add(steps);
                        if let Some(m) = &self.metrics {
                            m.decision_steps.observe(steps);
                        }
                    }
                    StatOp::HeadArrival(msg, hops) => self.stats.on_head_arrival(msg, hops),
                    StatOp::Deliver(msg) => {
                        let meta = self.stats.on_deliver(msg, self.cycle);
                        if let Some(m) = &self.metrics {
                            m.delivered.inc();
                            if let Some(meta) = meta {
                                m.latency.observe(self.cycle - meta.inject_cycle);
                                m.hops.observe(meta.hops as u64);
                                m.excess_hops
                                    .observe(meta.hops.saturating_sub(meta.min_dist) as u64);
                            }
                        }
                    }
                }
            }
            self.shard_scratch[si].ops = ops;
        }
    }

    /// Barrier after ejection/switch: returns freed credits to the
    /// upstream senders (each input lane frees at most one slot per cycle,
    /// so the increments commute; shard order matches the sequential
    /// application order anyway).
    fn apply_credit_returns(&mut self) {
        let topo = Arc::clone(&self.topo);
        let depth = self.cfg.buffer_depth;
        let mut ch = self.chans.full_mut();
        for scr in &mut self.shard_scratch {
            for &(ni, p, iv) in &scr.credit_returns {
                let n = NodeId(ni);
                let Some(m) = topo.neighbor(n, PortId(p)) else { continue };
                let q = topo.port_towards(m, n).expect("reverse");
                let c = ch.out_credits(m.idx(), q.idx(), iv as usize);
                ch.set_out_credits(m.idx(), q.idx(), iv as usize, (c + 1).min(depth));
            }
            scr.credit_returns.clear();
        }
    }

    /// Runs `cycles` steps (stops early on deadlock).
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            if self.stats.deadlock {
                break;
            }
            self.step();
        }
    }

    /// Runs until all in-flight messages terminate or `budget` cycles
    /// elapse. Returns true if the network drained.
    pub fn drain(&mut self, budget: u64) -> bool {
        let start = self.cycle;
        while self.in_flight() > 0 && !self.stats.deadlock {
            if self.cycle - start >= budget {
                return false;
            }
            self.step();
        }
        self.in_flight() == 0
    }

    /// Human-readable dump of every occupied buffer — debugging aid for
    /// stuck or deadlocked networks.
    pub fn dump_occupancy(&self) -> String {
        use std::fmt::Write as _;
        let geo = self.chans.geo();
        let mut s = String::new();
        for ni in 0..geo.nodes {
            for ip in 0..=geo.degree {
                for iv in 0..geo.vcs_at(ip) {
                    if self.chans.fifo_len(ni, ip, iv) != 0 {
                        let _ = writeln!(
                            s,
                            "n{ni} in[{ip}][{iv}] route={:?} phase={:?} flits={:?}",
                            self.chans.route(ni, ip, iv),
                            self.chans.phase_of(ni, ip, iv),
                            self.chans
                                .fifo_iter(ni, ip, iv)
                                .map(|f| (f.msg, f.seq))
                                .collect::<Vec<_>>()
                        );
                    }
                }
            }
            for p in 0..geo.degree {
                if let Some((v, f)) = self.chans.out_reg(ni, p) {
                    let _ = writeln!(s, "n{ni} outreg[{p}] vc={v} msg={:?}", f.msg);
                }
            }
            for p in 0..geo.degree {
                for v in 0..geo.vcs {
                    let owner = self.chans.out_owner(ni, p, v);
                    let credits = self.chans.out_credits(ni, p, v);
                    if owner.is_some() || credits != self.cfg.buffer_depth {
                        let _ =
                            writeln!(s, "n{ni} out[{p}][{v}] owner={owner:?} credits={credits}");
                    }
                }
            }
            if !self.chans.staging(ni).is_empty() {
                let _ = writeln!(s, "n{ni} staging={}", self.chans.staging(ni).len());
            }
        }
        s
    }

    /// Direct read access to a controller (diagnostics/experiments).
    pub fn controller(&self, n: NodeId) -> &dyn NodeController {
        self.ctrls[n.idx()].as_ref()
    }
}

/// Restricts a sorted node-id slice to the half-open range `lo..hi`.
fn sub_range(xs: &[u32], lo: usize, hi: usize) -> &[u32] {
    let a = xs.partition_point(|&x| (x as usize) < lo);
    let b = xs.partition_point(|&x| (x as usize) < hi);
    &xs[a..b]
}

/// Executes one phase bundle for one shard. Free function so it can run
/// on a scoped worker thread without borrowing the `Network`.
fn run_shard(ctx: &StepCtx<'_>, phase: PhaseKind, t: &mut ShardTask<'_>) {
    match phase {
        PhaseKind::Link => phase_link(ctx, t),
        PhaseKind::InjectRoute => {
            phase_inject(ctx, t);
            phase_route(ctx, t);
        }
        PhaseKind::EjectSwitch => phase_eject_switch(ctx, t),
    }
}

/// Link traversal: drains each active node's output registers into the
/// downstream input FIFOs (in-shard) or the handoff queue (cross-shard).
fn phase_link(ctx: &StepCtx<'_>, t: &mut ShardTask<'_>) {
    for &ni in t.cur {
        let n = NodeId(ni);
        let ni = ni as usize;
        for p in 0..ctx.degree {
            let Some((vc, flit)) = t.ch.take_out_reg(ni, p) else {
                continue;
            };
            let port = PortId(p as u8);
            if !ctx.faults.link_usable(ctx.topo, n, port) {
                // caught on a just-dead link — the master applies the
                // liveness gate and kills through the normal path
                t.scr.dropped.push(flit.msg);
                continue;
            }
            let m = ctx.topo.neighbor(n, port).expect("usable link");
            let q = ctx.topo.port_towards(m, n).expect("reverse");
            if m.idx() >= t.lo && m.idx() < t.hi {
                t.ch.fifo_push_back(m.idx(), q.idx(), vc.idx(), flit);
                t.scr.newly_active.push(m.idx() as u32);
            } else {
                t.scr.handoff.push(Handoff { node: m.0, port: q.0, vc: vc.0, flit });
            }
            t.scr.moved = true;
        }
    }
}

/// Injection: staging queue -> injection FIFO, bounded by buffer depth.
fn phase_inject(ctx: &StepCtx<'_>, t: &mut ShardTask<'_>) {
    for &ni in t.cur {
        let ni = ni as usize;
        while !t.ch.staging(ni).is_empty()
            && t.ch.fifo_len(ni, ctx.degree, 0) < ctx.cfg.buffer_depth as usize
        {
            let f = t.ch.staging_mut(ni).pop_front().expect("checked");
            t.ch.fifo_push_back(ni, ctx.degree, 0, f);
            t.scr.moved = true;
        }
    }
}

/// Routing decisions over the extended working set.
fn phase_route(ctx: &StepCtx<'_>, t: &mut ShardTask<'_>) {
    for &ni in t.cur_ext {
        let n = NodeId(ni);
        if ctx.faults.node_faulty(n) {
            continue;
        }
        for ip in 0..=ctx.degree {
            let lanes = if ip == ctx.degree { 1 } else { ctx.vcs };
            for iv in 0..lanes {
                route_one(ctx, t, n, ip, iv);
            }
        }
    }
}

/// Decision handling for one input VC.
fn route_one(ctx: &StepCtx<'_>, t: &mut ShardTask<'_>, n: NodeId, ip: usize, iv: usize) {
    let ni = n.idx();
    if t.ch.route(ni, ip, iv) != RouteState::Unrouted {
        return;
    }
    match t.ch.fifo_front(ni, ip, iv) {
        Some(f) if f.header().is_some() => {}
        _ => return,
    }

    // advance the decision countdown
    match t.ch.phase_of(ni, ip, iv) {
        Some(DecisionPhase::Waiting(c)) if c > 1 => {
            t.ch.set_phase(ni, ip, iv, Some(DecisionPhase::Waiting(c - 1)));
            return;
        }
        Some(DecisionPhase::Waiting(_)) => {
            // latency elapsed this cycle: consult and apply below
            t.ch.set_phase(ni, ip, iv, Some(DecisionPhase::Ready));
        }
        Some(DecisionPhase::Ready) | None => {}
    }

    let in_port = if ip < ctx.degree { Some(PortId(ip as u8)) } else { None };
    let header_copy =
        *t.ch.fifo_front_mut(ni, ip, iv).and_then(|f| f.header_mut()).expect("head checked");

    // destination reached: deliver without consulting the algorithm
    if header_copy.dst == n {
        t.ch.set_route(ni, ip, iv, RouteState::Local);
        let first = !t.ch.counted(ni, ip, iv);
        t.ch.set_counted(ni, ip, iv, true);
        if first {
            t.scr.ops.push(StatOp::Decision(0));
            emit_sh(ctx, t.scr, || EventKind::RouteDecision {
                node: n,
                msg: header_copy.msg.0,
                in_port,
                in_vc: VcId(iv as u8),
                outcome: RouteOutcome::Deliver,
                steps: 0,
                misrouted: header_copy.misrouted,
            });
        }
        return;
    }

    // consult the controller
    let vd = view_data_sh(ctx, &t.ch, n);
    let view = vd.view(n, ctx.cycle);
    let mut header = header_copy;
    let dec = t.ctrls[ni - t.lo].route(&view, &mut header, in_port, VcId(iv as u8));
    // write back header updates
    if let Some(h) = t.ch.fifo_front_mut(ni, ip, iv).and_then(|f| f.header_mut()) {
        *h = header;
    }

    let first_sight = t.ch.phase_of(ni, ip, iv).is_none();
    if first_sight {
        if !t.ch.counted(ni, ip, iv) {
            t.ch.set_counted(ni, ip, iv, true);
            t.scr.ops.push(StatOp::Decision(dec.steps as u64));
            emit_sh(ctx, t.scr, || EventKind::RouteDecision {
                node: n,
                msg: header_copy.msg.0,
                in_port,
                in_vc: VcId(iv as u8),
                outcome: match dec.verdict {
                    Verdict::Route(p, v) => RouteOutcome::Routed(p, v),
                    Verdict::Deliver => RouteOutcome::Deliver,
                    Verdict::Wait => RouteOutcome::Wait,
                    Verdict::Unroutable => RouteOutcome::Unroutable,
                },
                steps: dec.steps,
                misrouted: header.misrouted,
            });
        }
        // Modeled decision latency: steps × cycles-per-step total cycles,
        // of which this (first-sight) cycle is one. A cost of 0 or 1
        // resolves combinationally — the verdict applies this same cycle —
        // while a cost of c ≥ 2 inserts c − 1 explicit waiting cycles.
        // Zero cost arises legitimately (zero-weighted rules, or
        // `decision_cycles_per_step == 0` modeling a free decision stage)
        // and behaves exactly like cost 1; no clamping needed.
        let delay = dec.steps.saturating_mul(ctx.cfg.decision_cycles_per_step);
        if delay > 1 {
            t.ch.set_phase(ni, ip, iv, Some(DecisionPhase::Waiting(delay - 1)));
            return;
        }
        t.ch.set_phase(ni, ip, iv, Some(DecisionPhase::Ready));
    }

    // apply the verdict (Ready state retries for free on contention)
    match dec.verdict {
        Verdict::Deliver => {
            t.ch.set_route(ni, ip, iv, RouteState::Local);
        }
        Verdict::Wait => {
            // trace completeness: a waiting head never reaches the
            // VcStall path (the controller withheld the grant), so the
            // blocked cycle and the channels that would unblock it are
            // recorded here — the diagnoser's wait-for edges
            if ctx.sink_on {
                let wants = probe_wants_sh(
                    ctx,
                    &mut t.ctrls[ni - t.lo],
                    n,
                    &header,
                    in_port,
                    VcId(iv as u8),
                );
                emit_sh(ctx, t.scr, || EventKind::RouteWait {
                    node: n,
                    msg: header_copy.msg.0,
                    wants,
                });
            }
        }
        Verdict::Unroutable => {
            t.scr.unroutable.push(header_copy.msg);
        }
        Verdict::Route(p, v) => {
            let ok = p.idx() < ctx.degree
                && v.idx() < ctx.vcs
                && ctx.faults.link_usable(ctx.topo, n, p)
                && t.ch.out_channel_free(ni, p.idx(), v.idx());
            if !ok {
                // granted a route but the output channel is unusable
                // this cycle: a VC-allocation stall
                emit_sh(ctx, t.scr, || EventKind::VcStall {
                    node: n,
                    msg: header_copy.msg.0,
                    port: p,
                    vc: v,
                });
            }
            if ok {
                let misrouted =
                    t.ch.fifo_front(ni, ip, iv)
                        .and_then(|f| f.header())
                        .is_some_and(|h| h.misrouted);
                t.ch.set_out_owner(ni, p.idx(), v.idx(), Some(header_copy.msg));
                t.ch.set_route(ni, ip, iv, RouteState::Out(p, v));
                t.ch.set_misrouted(ni, ip, iv, misrouted);
                t.ch.add_out_assigned(ni, p.idx(), header_copy.len_flits);
                emit_sh(ctx, t.scr, || EventKind::VcAcquire {
                    node: n,
                    msg: header_copy.msg.0,
                    port: p,
                    vc: v,
                });
            }
        }
    }
}

/// Ejection then switch allocation over the extended working set.
fn phase_eject_switch(ctx: &StepCtx<'_>, t: &mut ShardTask<'_>) {
    let nports = ctx.degree + 1;
    for &ni in t.cur_ext {
        let n = NodeId(ni);
        let ni = ni as usize;
        t.scr.used.clear();
        t.scr.used.resize(nports, false);

        // ejection first (delivery has priority on the input port)
        for ip in 0..nports {
            if t.scr.used[ip] {
                continue;
            }
            let lanes = if ip == ctx.degree { 1 } else { ctx.vcs };
            for iv in 0..lanes {
                if t.ch.route(ni, ip, iv) != RouteState::Local || t.ch.fifo_len(ni, ip, iv) == 0 {
                    continue;
                }
                let flit = t.ch.fifo_pop_front(ni, ip, iv).expect("checked");
                t.scr.moved = true;
                t.scr.used[ip] = true;
                if let Some(h) = flit.header() {
                    t.scr.ops.push(StatOp::HeadArrival(flit.msg, h.hops));
                }
                let is_tail = matches!(flit.kind, FlitKind::Tail)
                    || matches!(flit.kind, FlitKind::Head(h) if h.len_flits <= 1);
                if is_tail {
                    t.scr.ops.push(StatOp::Deliver(flit.msg));
                    emit_sh(ctx, t.scr, || EventKind::Deliver { node: n, msg: flit.msg.0 });
                    t.ch.reset_route(ni, ip, iv);
                }
                if ip < ctx.degree {
                    t.scr.credit_returns.push((ni as u32, ip as u8, iv as u8));
                }
                break; // one flit per input port
            }
        }

        // switch: one flit per output port, round-robin over inputs
        for p in 0..ctx.degree {
            if t.ch.out_reg(ni, p).is_some() {
                continue;
            }
            let slots = nports * ctx.vcs;
            let start = t.ch.rr(ni, p) as usize;
            let mut winner: Option<(usize, usize, VcId)> = None;
            // two passes when fairness for misrouted messages is on:
            // first only misrouted candidates, then everyone
            let passes: &[bool] =
                if ctx.cfg.prioritize_misrouted { &[true, false] } else { &[false] };
            'arb: for &misrouted_only in passes {
                for off in 0..slots {
                    let s = (start + off) % slots;
                    let ip = s / ctx.vcs;
                    let iv = s % ctx.vcs;
                    let lanes = if ip == ctx.degree { 1 } else { ctx.vcs };
                    if iv >= lanes || t.scr.used[ip] {
                        continue;
                    }
                    if misrouted_only && !t.ch.misrouted(ni, ip, iv) {
                        continue;
                    }
                    let RouteState::Out(op, ov) = t.ch.route(ni, ip, iv) else { continue };
                    if op.idx() != p || t.ch.fifo_len(ni, ip, iv) == 0 {
                        continue;
                    }
                    if t.ch.out_credits(ni, p, ov.idx()) == 0 {
                        continue;
                    }
                    winner = Some((ip, iv, ov));
                    t.ch.set_rr(ni, p, ((s + 1) % slots) as u32);
                    break 'arb;
                }
            }
            let Some((ip, iv, ov)) = winner else { continue };
            t.scr.used[ip] = true;
            let mut flit = t.ch.fifo_pop_front(ni, ip, iv).expect("winner has flit");
            t.scr.moved = true;
            if let Some(h) = flit.header_mut() {
                h.hops += 1;
            }
            let is_tail = matches!(flit.kind, FlitKind::Tail)
                || matches!(flit.kind, FlitKind::Head(h) if h.len_flits <= 1);
            if is_tail {
                t.ch.reset_route(ni, ip, iv);
                t.ch.set_out_owner(ni, p, ov.idx(), None);
                emit_sh(ctx, t.scr, || EventKind::VcRelease {
                    node: n,
                    msg: flit.msg.0,
                    port: PortId(p as u8),
                    vc: ov,
                });
            }
            let c = t.ch.out_credits(ni, p, ov.idx());
            t.ch.set_out_credits(ni, p, ov.idx(), c - 1);
            t.ch.sub_out_assigned_sat(ni, p, 1);
            t.ch.set_out_reg(ni, p, Some((ov, flit)));
            if ip < ctx.degree {
                t.scr.credit_returns.push((ni as u32, ip as u8, iv as u8));
            }
        }
    }
}

/// Shard-side trace emission: buffers the event for the barrier flush
/// (the closure only runs when a sink is attached).
#[inline]
fn emit_sh(ctx: &StepCtx<'_>, scr: &mut ShardScratch, kind: impl FnOnce() -> EventKind) {
    if ctx.sink_on {
        scr.events.push(TraceEvent { cycle: ctx.cycle, kind: kind() });
    }
}

/// Shard-side [`ViewData`] snapshot — same shape as the master's
/// `Network::view_data`, reading through the shard's arena view.
fn view_data_sh(ctx: &StepCtx<'_>, ch: &ChanRef<'_>, n: NodeId) -> ViewData {
    let ni = n.idx();
    let mut out_free = vec![vec![false; ctx.vcs]; ctx.degree];
    let mut link_alive = vec![false; ctx.degree];
    for p in 0..ctx.degree {
        let alive = ctx.faults.link_usable(ctx.topo, n, PortId(p as u8));
        link_alive[p] = alive;
        if alive {
            for v in 0..ctx.vcs {
                out_free[p][v] = ch.out_channel_free(ni, p, v);
            }
        }
    }
    let mut out_load = vec![0u32; ctx.degree];
    for p in 0..ctx.degree {
        out_load[p] = ch.out_assigned(ni, p) + ch.out_reg(ni, p).is_some() as u32;
    }
    ViewData { out_free, out_load, link_alive }
}

/// Output channels the controller would accept *right now* for a head it
/// asked to wait: each live `(port, vc)` is probed under a synthetic view
/// where exactly that channel is free, and kept when the controller grants
/// it. Runs only while a trace sink is attached (the `RouteWait` wait-for
/// edges); header mutations made by the probed decisions are discarded, so
/// a controller whose `route` is a pure function of view + header — every
/// in-tree algorithm — is unperturbed.
fn probe_wants_sh(
    ctx: &StepCtx<'_>,
    ctrl: &mut Box<dyn NodeController>,
    n: NodeId,
    header: &Header,
    in_port: Option<PortId>,
    in_vc: VcId,
) -> Vec<(PortId, VcId)> {
    let mut link_alive = vec![false; ctx.degree];
    for (p, alive) in link_alive.iter_mut().enumerate() {
        *alive = ctx.faults.link_usable(ctx.topo, n, PortId(p as u8));
    }
    let out_load = vec![0u32; ctx.degree];
    let mut out_free = vec![vec![false; ctx.vcs]; ctx.degree];
    let mut wants = Vec::new();
    for p in 0..ctx.degree {
        if !link_alive[p] {
            continue;
        }
        for v in 0..ctx.vcs {
            out_free[p][v] = true;
            let view = RouterView {
                node: n,
                cycle: ctx.cycle,
                out_free: &out_free,
                out_load: &out_load,
                link_alive: &link_alive,
            };
            let mut h = *header;
            let dec = ctrl.route(&view, &mut h, in_port, in_vc);
            out_free[p][v] = false;
            if let Verdict::Route(rp, rv) = dec.verdict {
                if rp.idx() == p && rv.idx() == v {
                    wants.push((PortId(p as u8), VcId(v as u8)));
                }
            }
        }
    }
    wants
}

/// Owned per-node snapshot backing a [`RouterView`].
struct ViewData {
    out_free: Vec<Vec<bool>>,
    out_load: Vec<u32>,
    link_alive: Vec<bool>,
}

impl ViewData {
    fn view(&self, node: NodeId, cycle: u64) -> RouterView<'_> {
        RouterView {
            node,
            cycle,
            out_free: &self.out_free,
            out_load: &self.out_load,
            link_alive: &self.link_alive,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::Decision;
    use crate::traffic::{Pattern, TrafficSource};
    use ftr_topo::{Mesh2D, Topology, EAST, NORTH, SOUTH, WEST};

    /// XY dimension-order routing with a configurable step count.
    struct Xy {
        mesh: Mesh2D,
        steps: u32,
    }

    struct XyCtl {
        mesh: Mesh2D,
        steps: u32,
    }

    impl RoutingAlgorithm for Xy {
        fn name(&self) -> String {
            "xy-test".into()
        }
        fn num_vcs(&self) -> usize {
            1
        }
        fn controller(&self, _t: &dyn Topology, _n: NodeId) -> Box<dyn NodeController> {
            Box::new(XyCtl { mesh: self.mesh.clone(), steps: self.steps })
        }
    }

    impl NodeController for XyCtl {
        fn route(
            &mut self,
            view: &RouterView<'_>,
            h: &mut Header,
            _ip: Option<PortId>,
            _iv: VcId,
        ) -> Decision {
            let (dx, dy) = self.mesh.offset(view.node, h.dst);
            let p = if dx > 0 {
                EAST
            } else if dx < 0 {
                WEST
            } else if dy > 0 {
                NORTH
            } else {
                SOUTH
            };
            if view.out_free[p.idx()][0] {
                Decision::new(Verdict::Route(p, VcId(0)), self.steps)
            } else {
                Decision::new(Verdict::Wait, self.steps)
            }
        }
    }

    /// Fully adaptive minimal on one VC — deadlocks under heavy load.
    struct GreedyAdaptive {
        mesh: Mesh2D,
    }

    impl RoutingAlgorithm for GreedyAdaptive {
        fn name(&self) -> String {
            "greedy".into()
        }
        fn num_vcs(&self) -> usize {
            1
        }
        fn controller(&self, _t: &dyn Topology, _n: NodeId) -> Box<dyn NodeController> {
            Box::new(GreedyCtl { mesh: self.mesh.clone() })
        }
    }

    struct GreedyCtl {
        mesh: Mesh2D,
    }

    impl NodeController for GreedyCtl {
        fn route(
            &mut self,
            view: &RouterView<'_>,
            h: &mut Header,
            _ip: Option<PortId>,
            _iv: VcId,
        ) -> Decision {
            for p in self.mesh.minimal_directions(view.node, h.dst) {
                if view.out_free[p.idx()][0] {
                    return Decision::new(Verdict::Route(p, VcId(0)), 1);
                }
            }
            Decision::new(Verdict::Wait, 1)
        }
    }

    fn mesh_net(side: u32, steps: u32, cfg: SimConfig) -> (Arc<Mesh2D>, Network) {
        let topo = Arc::new(Mesh2D::new(side, side));
        let algo = Xy { mesh: (*topo).clone(), steps };
        let net = Network::builder(topo.clone()).config(cfg).build(&algo).expect("valid config");
        (topo, net)
    }

    #[test]
    fn builder_rejects_invalid_configs() {
        let topo = Arc::new(Mesh2D::new(3, 3));
        let algo = Xy { mesh: (*topo).clone(), steps: 1 };
        assert_eq!(
            Network::builder(topo.clone()).buffer_depth(0).build(&algo).err(),
            Some(BuildError::ZeroBufferDepth)
        );
        assert_eq!(
            Network::builder(topo.clone()).deadlock_threshold(0).build(&algo).err(),
            Some(BuildError::ZeroDeadlockThreshold)
        );
        struct NoVc;
        impl RoutingAlgorithm for NoVc {
            fn name(&self) -> String {
                "novc".into()
            }
            fn num_vcs(&self) -> usize {
                0
            }
            fn controller(&self, _t: &dyn Topology, _n: NodeId) -> Box<dyn NodeController> {
                unreachable!()
            }
        }
        assert_eq!(
            Network::builder(topo.clone()).build(&NoVc).err(),
            Some(BuildError::NoVirtualChannels)
        );
    }

    #[test]
    fn trace_events_cover_message_lifecycle() {
        let topo = Arc::new(Mesh2D::new(4, 4));
        let algo = Xy { mesh: (*topo).clone(), steps: 2 };
        let sink = Arc::new(ftr_obs::RingSink::new(4096));
        let registry = Arc::new(MetricsRegistry::new());
        let mut net = Network::builder(topo.clone())
            .trace(sink.clone())
            .metrics(registry.clone())
            .build(&algo)
            .expect("valid config");
        net.set_measuring(true);
        let id = net.send(topo.node_at(0, 0), topo.node_at(2, 1), 4).unwrap();
        assert!(net.drain(1_000));

        let events = sink.events();
        assert!(!events.is_empty());
        // cycle stamps never decrease
        assert!(events.windows(2).all(|w| w[0].cycle <= w[1].cycle));
        // inject precedes every decision, which precede the delivery
        let tags: Vec<&str> = events.iter().map(|e| e.kind.tag()).collect();
        assert_eq!(tags.first(), Some(&"inject"));
        assert_eq!(tags.last(), Some(&"deliver"));
        // per-hop decisions: 3 hops = decisions at (0,0), (1,0), (2,0); the
        // destination's 0-step delivery shortcut also records one
        let decisions = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::RouteDecision { msg, .. } if msg == id.0))
            .count();
        assert_eq!(decisions, 4);
        // trace-derived step totals agree with the stats accumulator
        let steps_from_trace: u64 = events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::RouteDecision { steps, .. } => Some(steps as u64),
                _ => None,
            })
            .sum();
        assert_eq!(steps_from_trace, net.stats.decision_steps.sum);
        // metrics registry saw the same traffic
        assert_eq!(registry.counter_value("sim.injected"), Some(1));
        assert_eq!(registry.counter_value("sim.delivered"), Some(1));
        let lat = registry.histogram_snapshot("sim.latency").expect("latency recorded");
        assert_eq!(lat.count, 1);
        assert_eq!(lat.sum, net.stats.latency.sum);
    }

    #[test]
    fn no_sink_means_no_events_and_working_sim() {
        let (topo, mut net) = mesh_net(4, 1, SimConfig::default());
        assert!(net.trace_sink().is_none());
        assert!(net.metrics_registry().is_none());
        net.send(topo.node_at(0, 0), topo.node_at(3, 3), 4).unwrap();
        assert!(net.drain(1_000));
        assert_eq!(net.stats.delivered_msgs, 1);
        assert!(net.stats.accounting_balanced());
    }

    #[test]
    fn single_message_latency_is_sane() {
        let (topo, mut net) = mesh_net(4, 1, SimConfig::default());
        net.set_measuring(true);
        net.send(topo.node_at(0, 0), topo.node_at(3, 3), 4).unwrap();
        assert!(net.drain(1_000));
        assert_eq!(net.stats.delivered_msgs, 1);
        assert_eq!(net.stats.hops.max, 6, "XY path is 6 hops");
        // lower bound: 6 links + serialization of 4 flits
        assert!(net.stats.latency.min >= 9, "latency {}", net.stats.latency.min);
        assert!(net.stats.latency.max < 60);
    }

    #[test]
    fn decision_latency_increases_message_latency() {
        let mut lat = Vec::new();
        for steps in [1, 3] {
            let (topo, mut net) = mesh_net(4, steps, SimConfig::default());
            net.set_measuring(true);
            net.send(topo.node_at(0, 0), topo.node_at(3, 3), 4).unwrap();
            assert!(net.drain(2_000));
            lat.push(net.stats.latency.mean());
        }
        // 6 routing decisions on the path, each 2 cycles slower
        assert!(lat[1] >= lat[0] + 8.0, "3-step decisions should cost >= 8 extra cycles: {lat:?}");
    }

    #[test]
    fn many_messages_all_delivered() {
        let (topo, mut net) = mesh_net(4, 1, SimConfig::default());
        net.set_measuring(true);
        let mut tf = TrafficSource::new(Pattern::Uniform, 0.1, 4, 42);
        for _ in 0..500 {
            for (s, d, l) in tf.tick(topo.as_ref(), net.faults()) {
                net.send(s, d, l).unwrap();
            }
            net.step();
        }
        assert!(net.drain(5_000), "network must drain");
        assert!(!net.stats.deadlock);
        assert!(net.stats.delivered_msgs > 100);
        assert_eq!(net.stats.delivered_msgs, net.stats.injected_msgs);
    }

    #[test]
    fn wormhole_backpressure_respects_credits() {
        // tiny buffers, long messages: must still deliver without loss
        let cfg = SimConfig { buffer_depth: 2, ..Default::default() };
        let (topo, mut net) = mesh_net(4, 1, cfg);
        net.set_measuring(true);
        for y in 0..4 {
            net.send(topo.node_at(0, y), topo.node_at(3, y), 16).unwrap();
        }
        assert!(net.drain(5_000));
        assert_eq!(net.stats.delivered_msgs, 4);
    }

    #[test]
    fn greedy_adaptive_deadlocks_under_pressure() {
        // 4 long messages chasing each other around the central ring with
        // 1-flit buffers reliably deadlock a fully adaptive 1-VC router
        let topo = Arc::new(Mesh2D::new(3, 3));
        let algo = GreedyAdaptive { mesh: (*topo).clone() };
        let cfg = SimConfig { buffer_depth: 1, deadlock_threshold: 200, ..Default::default() };
        let mut net = Network::builder(topo.clone()).config(cfg).build(&algo).expect("valid");
        // four corner-to-corner messages forming a cycle of turns
        net.send(topo.node_at(0, 0), topo.node_at(2, 2), 32).unwrap();
        net.send(topo.node_at(2, 0), topo.node_at(0, 2), 32).unwrap();
        net.send(topo.node_at(2, 2), topo.node_at(0, 0), 32).unwrap();
        net.send(topo.node_at(0, 2), topo.node_at(2, 0), 32).unwrap();
        let drained = net.drain(6_000);
        // either the schedule dodged the deadlock (possible) or the
        // watchdog fired; with these parameters the cycle forms reliably
        assert!(!drained || net.stats.deadlock || net.stats.delivered_msgs == 4);
        // the XY router under identical load must NOT deadlock
        let algo2 = Xy { mesh: (*topo).clone(), steps: 1 };
        let mut net2 = Network::builder(topo.clone()).config(cfg).build(&algo2).expect("valid");
        net2.send(topo.node_at(0, 0), topo.node_at(2, 2), 32).unwrap();
        net2.send(topo.node_at(2, 0), topo.node_at(0, 2), 32).unwrap();
        net2.send(topo.node_at(2, 2), topo.node_at(0, 0), 32).unwrap();
        net2.send(topo.node_at(0, 2), topo.node_at(2, 0), 32).unwrap();
        assert!(net2.drain(6_000), "XY must not deadlock");
        assert!(!net2.stats.deadlock);
    }

    #[test]
    fn static_link_fault_kills_nothing_when_idle() {
        let (topo, mut net) = mesh_net(4, 1, SimConfig::default());
        net.inject_link_fault(topo.node_at(1, 1), EAST);
        assert_eq!(net.stats.killed_msgs, 0);
        assert!(net.faults().link_faulty(topo.as_ref(), topo.node_at(1, 1), EAST));
    }

    #[test]
    fn dynamic_link_fault_rips_spanning_worm() {
        let (topo, mut net) = mesh_net(4, 1, SimConfig::default());
        let src = topo.node_at(0, 1);
        let dst = topo.node_at(3, 1);
        net.send(src, dst, 24).unwrap(); // long worm across the row
        net.run(8); // head is past (1,1)-(2,1), tail still at source
        net.inject_link_fault(topo.node_at(1, 1), EAST);
        assert_eq!(net.stats.killed_msgs, 1, "worm spanned the failed link");
        assert!(net.drain(1_000));
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn node_fault_kills_transiting_and_destined_messages() {
        let (topo, mut net) = mesh_net(4, 1, SimConfig::default());
        net.send(topo.node_at(0, 1), topo.node_at(3, 1), 24).unwrap(); // transits (2,1)
        net.send(topo.node_at(2, 0), topo.node_at(2, 1), 8).unwrap(); // destined there
        net.run(6);
        net.inject_node_fault(topo.node_at(2, 1));
        assert_eq!(net.stats.killed_msgs, 2);
        assert!(net.drain(1_000));
    }

    #[test]
    fn unroutable_verdict_counts_and_removes() {
        struct Refuse;
        struct RefuseCtl;
        impl RoutingAlgorithm for Refuse {
            fn name(&self) -> String {
                "refuse".into()
            }
            fn num_vcs(&self) -> usize {
                1
            }
            fn controller(&self, _t: &dyn Topology, _n: NodeId) -> Box<dyn NodeController> {
                Box::new(RefuseCtl)
            }
        }
        impl NodeController for RefuseCtl {
            fn route(
                &mut self,
                _v: &RouterView<'_>,
                _h: &mut Header,
                _ip: Option<PortId>,
                _iv: VcId,
            ) -> Decision {
                Decision::new(Verdict::Unroutable, 2)
            }
        }
        let topo = Arc::new(Mesh2D::new(3, 3));
        let mut net = Network::builder(topo.clone()).build(&Refuse).expect("valid");
        net.send(topo.node_at(0, 0), topo.node_at(2, 2), 4).unwrap();
        net.run(10);
        assert_eq!(net.stats.unroutable_msgs, 1);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn decision_steps_are_recorded() {
        let (topo, mut net) = mesh_net(4, 3, SimConfig::default());
        net.send(topo.node_at(0, 0), topo.node_at(2, 0), 2).unwrap();
        assert!(net.drain(1_000));
        // 3 routing decisions (source + 2 intermediate? source + node(1,0));
        // destination ejects without a decision (recorded as 0 steps)
        assert!(net.stats.decision_steps.count >= 3);
        assert_eq!(net.stats.decision_steps.max, 3);
    }

    #[test]
    fn control_plane_propagates_with_unit_latency() {
        struct Gossip;
        struct GossipCtl {
            heard: i64,
        }
        impl RoutingAlgorithm for Gossip {
            fn name(&self) -> String {
                "gossip".into()
            }
            fn num_vcs(&self) -> usize {
                1
            }
            fn controller(&self, _t: &dyn Topology, _n: NodeId) -> Box<dyn NodeController> {
                Box::new(GossipCtl { heard: 0 })
            }
        }
        impl NodeController for GossipCtl {
            fn route(
                &mut self,
                _v: &RouterView<'_>,
                _h: &mut Header,
                _ip: Option<PortId>,
                _iv: VcId,
            ) -> Decision {
                Decision::new(Verdict::Wait, 1)
            }
            fn on_fault(&mut self, view: &RouterView<'_>, _port: PortId) -> Vec<ControlMsg> {
                // flood a token to all alive neighbours
                (0..view.link_alive.len())
                    .filter(|&p| view.link_alive[p])
                    .map(|p| ControlMsg { port: PortId(p as u8), payload: vec![1] })
                    .collect()
            }
            fn on_control(
                &mut self,
                view: &RouterView<'_>,
                _from: PortId,
                payload: &[i64],
            ) -> Vec<ControlMsg> {
                if self.heard == 0 && payload == [1] {
                    self.heard = 1;
                    (0..view.link_alive.len())
                        .filter(|&p| view.link_alive[p])
                        .map(|p| ControlMsg { port: PortId(p as u8), payload: vec![1] })
                        .collect()
                } else {
                    Vec::new()
                }
            }
            fn state_word(&self) -> i64 {
                self.heard
            }
        }
        let topo = Arc::new(Mesh2D::new(5, 5));
        let mut net = Network::builder(topo.clone()).build(&Gossip).expect("valid");
        net.inject_link_fault(topo.node_at(2, 2), EAST);
        let settled = net.settle_control(1_000).expect("settles");
        // flood reaches the far corner within diameter+1 cycles
        assert!(settled <= 10, "settled in {settled}");
        for n in topo.nodes() {
            if n != topo.node_at(2, 2) && n != topo.node_at(3, 2) {
                assert_eq!(net.controller(n).state_word(), 1, "node {n} heard");
            }
        }
        assert!(net.stats.control_msgs > 20);
    }

    /// Regression for the silent flit-loss bug: a flit caught in an output
    /// register when its link dies used to hit a `debug_assert!` only —
    /// release builds dropped the flit on the floor and leaked the message
    /// (accounting never balanced, `drain` hung). This exercises a fault
    /// path that bypasses `inject_link_fault`'s worm ripping by flipping
    /// the link directly in the fault set. Must pass in debug AND release.
    #[test]
    fn dead_link_flit_is_killed_not_silently_dropped() {
        let topo = Arc::new(Mesh2D::new(4, 4));
        let algo = Xy { mesh: (*topo).clone(), steps: 1 };
        let sink = Arc::new(ftr_obs::RingSink::new(4096));
        let mut net =
            Network::builder(topo.clone()).trace(sink.clone()).build(&algo).expect("valid");
        let id = net.send(topo.node_at(0, 1), topo.node_at(3, 1), 6).unwrap();
        // advance until a flit of the worm sits on the (1,1)->(2,1) link
        let hot = topo.node_at(1, 1);
        for _ in 0..50 {
            if net.output_register_occupied(hot, EAST) {
                break;
            }
            net.step();
        }
        assert!(net.output_register_occupied(hot, EAST), "worm must reach the link");
        // rip the link out from under the engine without killing the worm
        let t = Arc::clone(&net.topo);
        net.faults.fail_link(t.as_ref(), hot, EAST);
        net.step();
        assert_eq!(net.stats.flits_dropped_on_dead_link, 1);
        assert_eq!(net.stats.killed_msgs, 1, "message killed through the normal path");
        assert!(!net.stats.tracks(id), "no leaked in-flight entry");
        assert!(net.stats.accounting_balanced(), "balance must hold in every build profile");
        let killed =
            sink.events().iter().any(|e| matches!(e.kind, EventKind::Kill { msg } if msg == id.0));
        assert!(killed, "kill event emitted");
        assert!(net.drain(1_000), "engine still drains after the drop");
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn occupancy_sampling_skips_cycle_zero() {
        let topo = Arc::new(Mesh2D::new(4, 4));
        let algo = Xy { mesh: (*topo).clone(), steps: 1 };
        // shorter than one period: no samples at all (cycle 0 used to
        // contribute a guaranteed all-zero sample per node)
        let registry = Arc::new(MetricsRegistry::new());
        let mut net =
            Network::builder(topo.clone()).metrics(registry.clone()).build(&algo).expect("valid");
        for _ in 0..OCCUPANCY_SAMPLE_PERIOD {
            net.step();
        }
        let snap = registry.histogram_snapshot("sim.buffer_occupancy").expect("registered");
        assert_eq!(snap.count, 0, "no sample before the first full period");
        // k cycles sample at p, 2p, ... floor(k/p) times, once per node
        let registry = Arc::new(MetricsRegistry::new());
        let mut net =
            Network::builder(topo.clone()).metrics(registry.clone()).build(&algo).expect("valid");
        let k = 2 * OCCUPANCY_SAMPLE_PERIOD + 1; // cycles 0..=2p run; p and 2p sample
        for _ in 0..k {
            net.step();
        }
        let snap = registry.histogram_snapshot("sim.buffer_occupancy").expect("registered");
        assert_eq!(snap.count, 2 * topo.num_nodes() as u64);
    }

    #[test]
    fn active_set_tracks_work_exactly() {
        let (topo, mut net) = mesh_net(4, 1, SimConfig::default());
        assert!(net.active_nodes().is_empty(), "idle network, empty set");
        net.send(topo.node_at(0, 0), topo.node_at(3, 3), 4).unwrap();
        assert_eq!(net.active_nodes(), vec![topo.node_at(0, 0)], "send activates the source");
        assert!(net.drain(1_000));
        assert!(net.active_nodes().is_empty(), "drained network, empty set again");
        // the invariant holds mid-flight too: active ⟺ has_work
        net.send(topo.node_at(1, 1), topo.node_at(3, 0), 8).unwrap();
        for _ in 0..30 {
            net.step();
            for n in topo.nodes() {
                let active = net.active_mask[n.idx()];
                assert_eq!(active, net.chans.has_work(n.idx()), "node {n} at {}", net.cycle());
            }
        }
    }

    #[test]
    fn active_set_matches_dense_reference_under_faults_and_retries() {
        let mk = |dense: bool| {
            let topo = Arc::new(Mesh2D::new(5, 5));
            let algo = Xy { mesh: (*topo).clone(), steps: 2 };
            let plan = FaultPlan::new().transient_link(40, NodeId(6), EAST, 80).transient_node(
                100,
                NodeId(12),
                120,
            );
            let sink = Arc::new(ftr_obs::RingSink::new(1 << 16));
            let mut net = Network::builder(topo.clone())
                .fault_plan(plan)
                .retry(RetryPolicy { max_attempts: 3, backoff_cycles: 10 })
                .trace(sink.clone())
                .build(&algo)
                .expect("valid");
            net.set_dense_reference(dense);
            net.set_measuring(true);
            (topo, net, sink)
        };
        let (topo, mut act, sink_a) = mk(false);
        let (_, mut dense, sink_d) = mk(true);
        let mut tf_a = TrafficSource::new(Pattern::Uniform, 0.15, 4, 9);
        let mut tf_d = TrafficSource::new(Pattern::Uniform, 0.15, 4, 9);
        for _ in 0..400 {
            for (s, d, l) in tf_a.tick(topo.as_ref(), act.faults()) {
                let _ = act.send(s, d, l);
            }
            for (s, d, l) in tf_d.tick(topo.as_ref(), dense.faults()) {
                let _ = dense.send(s, d, l);
            }
            act.step();
            dense.step();
            assert_eq!(act.last_step_moved(), dense.last_step_moved(), "cycle {}", dense.cycle());
        }
        while (act.in_flight() > 0 || dense.in_flight() > 0) && act.cycle() < 10_000 {
            act.step();
            dense.step();
        }
        assert!(act.stats.injected_msgs > 100, "traffic actually flowed");
        assert_eq!(act.stats, dense.stats, "bit-identical stats");
        assert_eq!(sink_a.events(), sink_d.events(), "bit-identical trace streams");
    }

    #[test]
    fn sharded_step_is_bit_identical_and_spawns_real_threads() {
        // the E15-shaped workload of the lockstep test above, run on one,
        // two (inline) and three (forced OS-thread) shards — stats and
        // trace streams must be bit-identical across all of them
        let mk = |threads: usize, spawn_threshold: usize| {
            let topo = Arc::new(Mesh2D::new(5, 5));
            let algo = Xy { mesh: (*topo).clone(), steps: 2 };
            let plan = FaultPlan::new().transient_link(40, NodeId(6), EAST, 80).transient_node(
                100,
                NodeId(12),
                120,
            );
            let sink = Arc::new(ftr_obs::RingSink::new(1 << 16));
            let mut net = Network::builder(topo.clone())
                .threads(threads)
                .spawn_threshold(spawn_threshold)
                .fault_plan(plan)
                .retry(RetryPolicy { max_attempts: 3, backoff_cycles: 10 })
                .trace(sink.clone())
                .build(&algo)
                .expect("valid");
            net.set_measuring(true);
            (topo, net, sink)
        };
        let (topo, mut seq, sink_1) = mk(1, usize::MAX);
        let (_, mut two, sink_2) = mk(2, usize::MAX); // multi-shard, inline
        let (_, mut os3, sink_3) = mk(3, 0); // multi-shard, forced OS threads
        assert_eq!(seq.threads(), 1);
        assert_eq!(two.threads(), 2);
        assert_eq!(os3.threads(), 3);
        let mut tfs: Vec<TrafficSource> =
            (0..3).map(|_| TrafficSource::new(Pattern::Uniform, 0.15, 4, 9)).collect();
        for _ in 0..400 {
            for (net, tf) in [&mut seq, &mut two, &mut os3].into_iter().zip(tfs.iter_mut()) {
                for (s, d, l) in tf.tick(topo.as_ref(), net.faults()) {
                    let _ = net.send(s, d, l);
                }
                net.step();
            }
            assert_eq!(seq.last_step_moved(), two.last_step_moved(), "cycle {}", seq.cycle());
            assert_eq!(seq.last_step_moved(), os3.last_step_moved(), "cycle {}", seq.cycle());
        }
        while (seq.in_flight() > 0 || two.in_flight() > 0 || os3.in_flight() > 0)
            && seq.cycle() < 10_000
        {
            seq.step();
            two.step();
            os3.step();
        }
        assert!(seq.stats.injected_msgs > 100, "traffic actually flowed");
        assert_eq!(seq.stats, two.stats, "2-shard stats bit-identical");
        assert_eq!(seq.stats, os3.stats, "3-shard (OS threads) stats bit-identical");
        assert_eq!(sink_1.events(), sink_2.events(), "2-shard trace bit-identical");
        assert_eq!(sink_1.events(), sink_3.events(), "3-shard trace bit-identical");
    }

    #[test]
    fn threads_cap_at_node_count() {
        let topo = Arc::new(Mesh2D::new(3, 3));
        let algo = Xy { mesh: (*topo).clone(), steps: 1 };
        let net = Network::builder(topo.clone()).threads(64).build(&algo).expect("valid");
        assert_eq!(net.threads(), 9, "shards cap at the node count");
    }

    /// One message across a quiet mesh; returns its latency.
    fn solo_latency(steps: u32, cps: u32) -> u64 {
        let cfg = SimConfig { decision_cycles_per_step: cps, ..Default::default() };
        let (topo, mut net) = mesh_net(4, steps, cfg);
        net.set_measuring(true);
        net.send(topo.node_at(0, 0), topo.node_at(3, 0), 2).unwrap();
        assert!(net.drain(10_000));
        net.stats.latency.min
    }

    #[test]
    fn zero_step_decision_resolves_combinationally() {
        // a modeled decision cost of 0 behaves exactly like cost 1: the
        // verdict applies in the first-sight cycle with no waiting phase
        // (total delay 0 or 1 both mean "within this cycle")
        assert_eq!(solo_latency(0, 1), solo_latency(1, 1));
        // while cost 2 really does insert one waiting cycle per decision
        // (3 routing decisions on the 3-hop path)
        assert_eq!(solo_latency(2, 1) - solo_latency(1, 1), 3);
    }

    #[test]
    fn zero_cycles_per_step_models_a_free_decision_stage() {
        // decision_cycles_per_step = 0 zeroes the delay whatever the step
        // count — same behaviour as a 1-cycle decision, never a stall
        assert_eq!(solo_latency(3, 0), solo_latency(1, 1));
        // and restoring the per-step cost brings the waiting cycles back:
        // steps=3, cps=1 → 2 waiting cycles at each of the 3 decisions
        assert_eq!(solo_latency(3, 1) - solo_latency(3, 0), 6);
    }
}
