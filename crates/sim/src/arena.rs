//! Struct-of-arrays channel arena: the flit and channel storage of every
//! router in one set of flat, node-major arrays.
//!
//! The engine used to keep a `Vec<RouterNode>` of per-node structs, each
//! holding nested `Vec<Vec<InputVc>>` / `VecDeque<Flit>` heap structures —
//! three pointer hops and an allocator round-trip per FIFO touch. The
//! arena replaces that with fixed-capacity ring FIFOs packed into one
//! `Vec<Flit>` plus parallel arrays for per-lane routing state, per-output
//! channel allocation/credits, and per-port registers. Two properties
//! matter beyond cache behaviour:
//!
//! - **Node-major layout**: every array is ordered by node id, so a
//!   contiguous node range maps to contiguous sub-slices of every array.
//!   [`Channels::split_mut`] cuts the arena into disjoint per-shard
//!   mutable views ([`ChanRef`]) with `split_at_mut` — no locks, no
//!   unsafe — which is what makes the sharded step of
//!   [`crate::Network::step`] possible.
//! - **Bounded FIFOs**: credit-based flow control guarantees a virtual
//!   channel never holds more than `buffer_depth` flits, so each lane is a
//!   ring of exactly `depth` slots; an overflow is a hard assertion (a
//!   credit-accounting bug, never a full buffer).
//!
//! Lane layout per node: ports `0..degree` each contribute `vcs` input
//! lanes, followed by one injection lane (port index `degree`, VC 0).

use crate::flit::{Flit, FlitKind, MessageId};
use crate::router::{DecisionPhase, RouteState};
use ftr_topo::VcId;
use std::collections::VecDeque;

/// Array-shape parameters shared by [`Channels`] and every [`ChanRef`].
#[derive(Clone, Copy, Debug)]
pub(crate) struct Geometry {
    /// Total nodes in the network.
    pub nodes: usize,
    /// Network ports per node.
    pub degree: usize,
    /// Virtual channels per network port.
    pub vcs: usize,
    /// FIFO capacity per lane, in flits.
    pub depth: usize,
    /// Input lanes per node: `degree * vcs` network lanes + 1 injection.
    pub lanes: usize,
}

impl Geometry {
    pub fn new(nodes: usize, degree: usize, vcs: usize, depth: usize) -> Self {
        Geometry { nodes, degree, vcs, depth, lanes: degree * vcs + 1 }
    }

    /// Lanes (VCs) on input port `ip`; the injection port has one.
    #[inline]
    pub fn vcs_at(&self, ip: usize) -> usize {
        if ip == self.degree {
            1
        } else {
            self.vcs
        }
    }

    /// Node-relative lane index of `(ip, iv)`.
    #[inline]
    fn lane_of(&self, ip: usize, iv: usize) -> usize {
        if ip == self.degree {
            debug_assert_eq!(iv, 0, "injection port has a single lane");
            self.degree * self.vcs
        } else {
            ip * self.vcs + iv
        }
    }
}

const PLACEHOLDER: Flit = Flit { kind: FlitKind::Body, msg: MessageId(0), seq: 0 };

/// The arena itself — see the module docs for the layout.
pub(crate) struct Channels {
    geo: Geometry,
    /// Ring storage: `depth` slots per lane, `lanes` lanes per node.
    fifo_buf: Vec<Flit>,
    /// Ring head offset per lane.
    fifo_head: Vec<u32>,
    /// Occupied slots per lane.
    fifo_len: Vec<u32>,
    /// Route of the message at each lane's FIFO front.
    route: Vec<RouteState>,
    /// Decision progress per lane.
    phase: Vec<Option<DecisionPhase>>,
    /// Whether the current head's decision steps were counted.
    counted: Vec<bool>,
    /// Fault-misrouted marker of the routed message (fairness hint).
    misrouted: Vec<bool>,
    /// Output-channel owner, indexed `node * degree * vcs + p * vcs + v`.
    out_owner: Vec<Option<MessageId>>,
    /// Downstream credits, same indexing as `out_owner`.
    out_credits: Vec<u32>,
    /// Per node-port link register, indexed `node * degree + p`.
    out_reg: Vec<Option<(VcId, Flit)>>,
    /// Per node-port round-robin arbitration pointer.
    rr: Vec<u32>,
    /// Per node-port flits still assigned to the output (adaptivity load).
    out_assigned: Vec<u32>,
    /// Per node: locally generated flits awaiting the injection FIFO.
    staging: Vec<VecDeque<Flit>>,
}

impl Channels {
    pub fn new(geo: Geometry) -> Self {
        let n = geo.nodes;
        Channels {
            geo,
            fifo_buf: vec![PLACEHOLDER; n * geo.lanes * geo.depth],
            fifo_head: vec![0; n * geo.lanes],
            fifo_len: vec![0; n * geo.lanes],
            route: vec![RouteState::Unrouted; n * geo.lanes],
            phase: vec![None; n * geo.lanes],
            counted: vec![false; n * geo.lanes],
            misrouted: vec![false; n * geo.lanes],
            out_owner: vec![None; n * geo.degree * geo.vcs],
            out_credits: vec![geo.depth as u32; n * geo.degree * geo.vcs],
            out_reg: vec![None; n * geo.degree],
            rr: vec![0; n * geo.degree],
            out_assigned: vec![0; n * geo.degree],
            staging: (0..n).map(|_| VecDeque::new()).collect(),
        }
    }

    #[inline]
    pub fn geo(&self) -> Geometry {
        self.geo
    }

    // ------------------------------------------------- read-only queries

    #[inline]
    fn lane(&self, n: usize, ip: usize, iv: usize) -> usize {
        n * self.geo.lanes + self.geo.lane_of(ip, iv)
    }

    #[inline]
    fn oc(&self, n: usize, p: usize, v: usize) -> usize {
        (n * self.geo.degree + p) * self.geo.vcs + v
    }

    pub fn fifo_len(&self, n: usize, ip: usize, iv: usize) -> usize {
        self.fifo_len[self.lane(n, ip, iv)] as usize
    }

    /// Flits of lane `(n, ip, iv)` in FIFO order.
    pub fn fifo_iter(&self, n: usize, ip: usize, iv: usize) -> impl Iterator<Item = &Flit> + '_ {
        let l = self.lane(n, ip, iv);
        let (d, head, len) =
            (self.geo.depth, self.fifo_head[l] as usize, self.fifo_len[l] as usize);
        (0..len).map(move |i| &self.fifo_buf[l * d + (head + i) % d])
    }

    pub fn route(&self, n: usize, ip: usize, iv: usize) -> RouteState {
        self.route[self.lane(n, ip, iv)]
    }

    pub fn phase_of(&self, n: usize, ip: usize, iv: usize) -> Option<DecisionPhase> {
        self.phase[self.lane(n, ip, iv)]
    }

    pub fn out_owner(&self, n: usize, p: usize, v: usize) -> Option<MessageId> {
        self.out_owner[self.oc(n, p, v)]
    }

    pub fn out_credits(&self, n: usize, p: usize, v: usize) -> u32 {
        self.out_credits[self.oc(n, p, v)]
    }

    pub fn out_reg(&self, n: usize, p: usize) -> Option<&(VcId, Flit)> {
        self.out_reg[n * self.geo.degree + p].as_ref()
    }

    pub fn out_assigned(&self, n: usize, p: usize) -> u32 {
        self.out_assigned[n * self.geo.degree + p]
    }

    /// Whether output VC `(p, v)` of node `n` is allocatable (idle +
    /// credit) — mirrors [`ChanRef::out_channel_free`].
    pub fn out_channel_free(&self, n: usize, p: usize, v: usize) -> bool {
        let c = self.oc(n, p, v);
        self.out_owner[c].is_none() && self.out_credits[c] > 0
    }

    pub fn staging(&self, n: usize) -> &VecDeque<Flit> {
        &self.staging[n]
    }

    pub fn staging_mut(&mut self, n: usize) -> &mut VecDeque<Flit> {
        &mut self.staging[n]
    }

    /// Total flits buffered at node `n` (inputs + output registers),
    /// excluding the staging queue.
    pub fn buffered_flits(&self, n: usize) -> usize {
        let mut total = 0usize;
        for l in n * self.geo.lanes..(n + 1) * self.geo.lanes {
            total += self.fifo_len[l] as usize;
        }
        for p in 0..self.geo.degree {
            total += self.out_reg[n * self.geo.degree + p].is_some() as usize;
        }
        total
    }

    /// Whether node `n` has any flit-bearing work — the activation
    /// predicate of the active-set scheduler.
    pub fn has_work(&self, n: usize) -> bool {
        if !self.staging[n].is_empty() {
            return true;
        }
        if self.fifo_len[n * self.geo.lanes..(n + 1) * self.geo.lanes].iter().any(|&l| l > 0) {
            return true;
        }
        self.out_reg[n * self.geo.degree..(n + 1) * self.geo.degree].iter().any(|r| r.is_some())
    }

    /// Resets node `n` to power-on state (fresh buffers, credits, rr,
    /// registers) — node repair hands back empty hardware.
    pub fn reset_node(&mut self, n: usize) {
        let geo = self.geo;
        for l in n * geo.lanes..(n + 1) * geo.lanes {
            self.fifo_head[l] = 0;
            self.fifo_len[l] = 0;
            self.route[l] = RouteState::Unrouted;
            self.phase[l] = None;
            self.counted[l] = false;
            self.misrouted[l] = false;
        }
        for c in n * geo.degree * geo.vcs..(n + 1) * geo.degree * geo.vcs {
            self.out_owner[c] = None;
            self.out_credits[c] = geo.depth as u32;
        }
        for p in n * geo.degree..(n + 1) * geo.degree {
            self.out_reg[p] = None;
            self.rr[p] = 0;
            self.out_assigned[p] = 0;
        }
        self.staging[n].clear();
    }

    // ----------------------------------------------------- shard views

    /// One mutable view over the whole arena (the master/sequential path).
    pub fn full_mut(&mut self) -> ChanRef<'_> {
        let geo = self.geo;
        ChanRef {
            base: 0,
            geo,
            fifo_buf: &mut self.fifo_buf,
            fifo_head: &mut self.fifo_head,
            fifo_len: &mut self.fifo_len,
            route: &mut self.route,
            phase: &mut self.phase,
            counted: &mut self.counted,
            misrouted: &mut self.misrouted,
            out_owner: &mut self.out_owner,
            out_credits: &mut self.out_credits,
            out_reg: &mut self.out_reg,
            rr: &mut self.rr,
            out_assigned: &mut self.out_assigned,
            staging: &mut self.staging,
        }
    }

    /// Cuts the arena into disjoint mutable views along `bounds` (node
    /// indices, ascending, `bounds[0] == 0`, last == `nodes`). Each view
    /// addresses nodes `bounds[i]..bounds[i+1]` with *global* node ids.
    pub fn split_mut(&mut self, bounds: &[usize]) -> Vec<ChanRef<'_>> {
        debug_assert!(bounds.len() >= 2);
        debug_assert_eq!(bounds[0], 0);
        debug_assert_eq!(*bounds.last().expect("non-empty"), self.geo.nodes);
        let geo = self.geo;
        let mut fifo_buf = self.fifo_buf.as_mut_slice();
        let mut fifo_head = self.fifo_head.as_mut_slice();
        let mut fifo_len = self.fifo_len.as_mut_slice();
        let mut route = self.route.as_mut_slice();
        let mut phase = self.phase.as_mut_slice();
        let mut counted = self.counted.as_mut_slice();
        let mut misrouted = self.misrouted.as_mut_slice();
        let mut out_owner = self.out_owner.as_mut_slice();
        let mut out_credits = self.out_credits.as_mut_slice();
        let mut out_reg = self.out_reg.as_mut_slice();
        let mut rr = self.rr.as_mut_slice();
        let mut out_assigned = self.out_assigned.as_mut_slice();
        let mut staging = self.staging.as_mut_slice();
        let mut out = Vec::with_capacity(bounds.len() - 1);
        for w in bounds.windows(2) {
            let cnt = w[1] - w[0];
            let (fb, r) = fifo_buf.split_at_mut(cnt * geo.lanes * geo.depth);
            fifo_buf = r;
            let (fh, r) = fifo_head.split_at_mut(cnt * geo.lanes);
            fifo_head = r;
            let (fl, r) = fifo_len.split_at_mut(cnt * geo.lanes);
            fifo_len = r;
            let (rt, r) = route.split_at_mut(cnt * geo.lanes);
            route = r;
            let (ph, r) = phase.split_at_mut(cnt * geo.lanes);
            phase = r;
            let (co, r) = counted.split_at_mut(cnt * geo.lanes);
            counted = r;
            let (mi, r) = misrouted.split_at_mut(cnt * geo.lanes);
            misrouted = r;
            let (oo, r) = out_owner.split_at_mut(cnt * geo.degree * geo.vcs);
            out_owner = r;
            let (ocr, r) = out_credits.split_at_mut(cnt * geo.degree * geo.vcs);
            out_credits = r;
            let (or_, r) = out_reg.split_at_mut(cnt * geo.degree);
            out_reg = r;
            let (rp, r) = rr.split_at_mut(cnt * geo.degree);
            rr = r;
            let (oa, r) = out_assigned.split_at_mut(cnt * geo.degree);
            out_assigned = r;
            let (st, r) = staging.split_at_mut(cnt);
            staging = r;
            out.push(ChanRef {
                base: w[0],
                geo,
                fifo_buf: fb,
                fifo_head: fh,
                fifo_len: fl,
                route: rt,
                phase: ph,
                counted: co,
                misrouted: mi,
                out_owner: oo,
                out_credits: ocr,
                out_reg: or_,
                rr: rp,
                out_assigned: oa,
                staging: st,
            });
        }
        out
    }
}

/// Mutable view over a contiguous node range of the arena. All accessors
/// take *global* node ids; a view created by [`Channels::split_mut`] may
/// only touch nodes inside its range (debug-asserted).
pub(crate) struct ChanRef<'a> {
    base: usize,
    geo: Geometry,
    fifo_buf: &'a mut [Flit],
    fifo_head: &'a mut [u32],
    fifo_len: &'a mut [u32],
    route: &'a mut [RouteState],
    phase: &'a mut [Option<DecisionPhase>],
    counted: &'a mut [bool],
    misrouted: &'a mut [bool],
    out_owner: &'a mut [Option<MessageId>],
    out_credits: &'a mut [u32],
    out_reg: &'a mut [Option<(VcId, Flit)>],
    rr: &'a mut [u32],
    out_assigned: &'a mut [u32],
    staging: &'a mut [VecDeque<Flit>],
}

impl ChanRef<'_> {
    #[inline]
    fn local(&self, n: usize) -> usize {
        debug_assert!(n >= self.base, "node {n} below shard base {}", self.base);
        n - self.base
    }

    #[inline]
    fn lane(&self, n: usize, ip: usize, iv: usize) -> usize {
        self.local(n) * self.geo.lanes + self.geo.lane_of(ip, iv)
    }

    #[inline]
    fn oc(&self, n: usize, p: usize, v: usize) -> usize {
        (self.local(n) * self.geo.degree + p) * self.geo.vcs + v
    }

    #[inline]
    fn np(&self, n: usize, p: usize) -> usize {
        self.local(n) * self.geo.degree + p
    }

    // ------------------------------------------------------- FIFO rings

    pub fn fifo_len(&self, n: usize, ip: usize, iv: usize) -> usize {
        self.fifo_len[self.lane(n, ip, iv)] as usize
    }

    pub fn fifo_push_back(&mut self, n: usize, ip: usize, iv: usize, f: Flit) {
        let l = self.lane(n, ip, iv);
        let d = self.geo.depth;
        let len = self.fifo_len[l] as usize;
        assert!(len < d, "VC FIFO overflow: the credit invariant was violated");
        self.fifo_buf[l * d + (self.fifo_head[l] as usize + len) % d] = f;
        self.fifo_len[l] += 1;
    }

    pub fn fifo_pop_front(&mut self, n: usize, ip: usize, iv: usize) -> Option<Flit> {
        let l = self.lane(n, ip, iv);
        if self.fifo_len[l] == 0 {
            return None;
        }
        let d = self.geo.depth;
        let f = self.fifo_buf[l * d + self.fifo_head[l] as usize];
        self.fifo_head[l] = ((self.fifo_head[l] as usize + 1) % d) as u32;
        self.fifo_len[l] -= 1;
        Some(f)
    }

    pub fn fifo_front(&self, n: usize, ip: usize, iv: usize) -> Option<&Flit> {
        let l = self.lane(n, ip, iv);
        if self.fifo_len[l] == 0 {
            return None;
        }
        Some(&self.fifo_buf[l * self.geo.depth + self.fifo_head[l] as usize])
    }

    pub fn fifo_front_mut(&mut self, n: usize, ip: usize, iv: usize) -> Option<&mut Flit> {
        let l = self.lane(n, ip, iv);
        if self.fifo_len[l] == 0 {
            return None;
        }
        Some(&mut self.fifo_buf[l * self.geo.depth + self.fifo_head[l] as usize])
    }

    #[cfg(test)]
    pub fn fifo_iter(&self, n: usize, ip: usize, iv: usize) -> impl Iterator<Item = &Flit> + '_ {
        let l = self.lane(n, ip, iv);
        let (d, head, len) =
            (self.geo.depth, self.fifo_head[l] as usize, self.fifo_len[l] as usize);
        (0..len).map(move |i| &self.fifo_buf[l * d + (head + i) % d])
    }

    /// Keeps only flits matching `pred`, compacting the ring in order.
    pub fn fifo_retain(&mut self, n: usize, ip: usize, iv: usize, pred: impl Fn(&Flit) -> bool) {
        let l = self.lane(n, ip, iv);
        let d = self.geo.depth;
        let head = self.fifo_head[l] as usize;
        let len = self.fifo_len[l] as usize;
        let mut kept = 0usize;
        for i in 0..len {
            let f = self.fifo_buf[l * d + (head + i) % d];
            if pred(&f) {
                self.fifo_buf[l * d + (head + kept) % d] = f;
                kept += 1;
            }
        }
        self.fifo_len[l] = kept as u32;
    }

    // ------------------------------------------------------- lane state

    pub fn route(&self, n: usize, ip: usize, iv: usize) -> RouteState {
        self.route[self.lane(n, ip, iv)]
    }

    pub fn set_route(&mut self, n: usize, ip: usize, iv: usize, r: RouteState) {
        let l = self.lane(n, ip, iv);
        self.route[l] = r;
    }

    pub fn phase_of(&self, n: usize, ip: usize, iv: usize) -> Option<DecisionPhase> {
        self.phase[self.lane(n, ip, iv)]
    }

    pub fn set_phase(&mut self, n: usize, ip: usize, iv: usize, p: Option<DecisionPhase>) {
        let l = self.lane(n, ip, iv);
        self.phase[l] = p;
    }

    pub fn counted(&self, n: usize, ip: usize, iv: usize) -> bool {
        self.counted[self.lane(n, ip, iv)]
    }

    pub fn set_counted(&mut self, n: usize, ip: usize, iv: usize, c: bool) {
        let l = self.lane(n, ip, iv);
        self.counted[l] = c;
    }

    pub fn misrouted(&self, n: usize, ip: usize, iv: usize) -> bool {
        self.misrouted[self.lane(n, ip, iv)]
    }

    pub fn set_misrouted(&mut self, n: usize, ip: usize, iv: usize, m: bool) {
        let l = self.lane(n, ip, iv);
        self.misrouted[l] = m;
    }

    /// Resets per-message decision state (after a tail leaves or a kill).
    pub fn reset_route(&mut self, n: usize, ip: usize, iv: usize) {
        let l = self.lane(n, ip, iv);
        self.route[l] = RouteState::Unrouted;
        self.phase[l] = None;
        self.counted[l] = false;
        self.misrouted[l] = false;
    }

    // -------------------------------------------------- output channels

    pub fn out_owner(&self, n: usize, p: usize, v: usize) -> Option<MessageId> {
        self.out_owner[self.oc(n, p, v)]
    }

    pub fn set_out_owner(&mut self, n: usize, p: usize, v: usize, o: Option<MessageId>) {
        let c = self.oc(n, p, v);
        self.out_owner[c] = o;
    }

    pub fn out_credits(&self, n: usize, p: usize, v: usize) -> u32 {
        self.out_credits[self.oc(n, p, v)]
    }

    pub fn set_out_credits(&mut self, n: usize, p: usize, v: usize, c: u32) {
        let i = self.oc(n, p, v);
        self.out_credits[i] = c;
    }

    /// Whether output VC `(p, v)` of node `n` is allocatable (idle +
    /// credit).
    pub fn out_channel_free(&self, n: usize, p: usize, v: usize) -> bool {
        let c = self.oc(n, p, v);
        self.out_owner[c].is_none() && self.out_credits[c] > 0
    }

    // -------------------------------------------------- per-port state

    pub fn out_reg(&self, n: usize, p: usize) -> Option<&(VcId, Flit)> {
        self.out_reg[self.np(n, p)].as_ref()
    }

    pub fn take_out_reg(&mut self, n: usize, p: usize) -> Option<(VcId, Flit)> {
        let i = self.np(n, p);
        self.out_reg[i].take()
    }

    pub fn set_out_reg(&mut self, n: usize, p: usize, r: Option<(VcId, Flit)>) {
        let i = self.np(n, p);
        self.out_reg[i] = r;
    }

    pub fn rr(&self, n: usize, p: usize) -> u32 {
        self.rr[self.np(n, p)]
    }

    pub fn set_rr(&mut self, n: usize, p: usize, v: u32) {
        let i = self.np(n, p);
        self.rr[i] = v;
    }

    pub fn out_assigned(&self, n: usize, p: usize) -> u32 {
        self.out_assigned[self.np(n, p)]
    }

    pub fn set_out_assigned(&mut self, n: usize, p: usize, v: u32) {
        let i = self.np(n, p);
        self.out_assigned[i] = v;
    }

    pub fn add_out_assigned(&mut self, n: usize, p: usize, v: u32) {
        let i = self.np(n, p);
        self.out_assigned[i] += v;
    }

    pub fn sub_out_assigned_sat(&mut self, n: usize, p: usize, v: u32) {
        let i = self.np(n, p);
        self.out_assigned[i] = self.out_assigned[i].saturating_sub(v);
    }

    // ------------------------------------------------------------ nodes

    pub fn staging_mut(&mut self, n: usize) -> &mut VecDeque<Flit> {
        let i = self.local(n);
        &mut self.staging[i]
    }

    pub fn staging(&self, n: usize) -> &VecDeque<Flit> {
        &self.staging[self.local(n)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flit(msg: u64, seq: u32) -> Flit {
        Flit { kind: FlitKind::Body, msg: MessageId(msg), seq }
    }

    #[test]
    fn ring_fifo_push_pop_wraps() {
        let mut ch = Channels::new(Geometry::new(2, 2, 1, 3));
        let mut v = ch.full_mut();
        for round in 0..5u64 {
            v.fifo_push_back(1, 0, 0, flit(round, 0));
            v.fifo_push_back(1, 0, 0, flit(round + 100, 1));
            assert_eq!(v.fifo_len(1, 0, 0), 2);
            assert_eq!(v.fifo_pop_front(1, 0, 0).unwrap().msg, MessageId(round));
            assert_eq!(v.fifo_pop_front(1, 0, 0).unwrap().msg, MessageId(round + 100));
            assert!(v.fifo_pop_front(1, 0, 0).is_none());
        }
    }

    #[test]
    #[should_panic(expected = "credit invariant")]
    fn ring_fifo_overflow_is_fatal() {
        let mut ch = Channels::new(Geometry::new(1, 1, 1, 2));
        let mut v = ch.full_mut();
        v.fifo_push_back(0, 0, 0, flit(1, 0));
        v.fifo_push_back(0, 0, 0, flit(1, 1));
        v.fifo_push_back(0, 0, 0, flit(1, 2));
    }

    #[test]
    fn retain_compacts_in_order() {
        let mut ch = Channels::new(Geometry::new(1, 1, 1, 4));
        let mut v = ch.full_mut();
        // wrap the ring first so retain must handle a non-zero head
        v.fifo_push_back(0, 0, 0, flit(9, 0));
        v.fifo_pop_front(0, 0, 0);
        for (m, s) in [(1u64, 0u32), (2, 0), (1, 1), (2, 1)] {
            v.fifo_push_back(0, 0, 0, flit(m, s));
        }
        v.fifo_retain(0, 0, 0, |f| f.msg != MessageId(2));
        let kept: Vec<_> = v.fifo_iter(0, 0, 0).map(|f| (f.msg.0, f.seq)).collect();
        assert_eq!(kept, vec![(1, 0), (1, 1)]);
    }

    #[test]
    fn injection_lane_is_last() {
        let geo = Geometry::new(3, 4, 2, 4);
        assert_eq!(geo.lanes, 9);
        assert_eq!(geo.lane_of(4, 0), 8);
        assert_eq!(geo.vcs_at(4), 1);
        assert_eq!(geo.vcs_at(0), 2);
    }

    #[test]
    fn split_views_address_global_ids() {
        let mut ch = Channels::new(Geometry::new(4, 2, 1, 2));
        let mut views = ch.split_mut(&[0, 2, 4]);
        let (a, b) = views.split_at_mut(1);
        a[0].fifo_push_back(1, 0, 0, flit(7, 0));
        b[0].fifo_push_back(3, 1, 0, flit(8, 0));
        b[0].set_rr(2, 1, 5);
        drop(views);
        assert_eq!(ch.fifo_len(1, 0, 0), 1);
        assert_eq!(ch.fifo_iter(3, 1, 0).next().unwrap().msg, MessageId(8));
        assert_eq!(ch.full_mut().rr(2, 1), 5);
        assert!(ch.has_work(1));
        assert!(!ch.has_work(0));
    }

    #[test]
    fn reset_node_restores_power_on_state() {
        let mut ch = Channels::new(Geometry::new(2, 2, 2, 4));
        {
            let mut v = ch.full_mut();
            v.fifo_push_back(1, 0, 1, flit(3, 0));
            v.set_route(1, 0, 1, RouteState::Local);
            v.set_out_owner(1, 1, 0, Some(MessageId(3)));
            v.set_out_credits(1, 1, 0, 1);
            v.set_rr(1, 0, 3);
            v.set_out_reg(1, 1, Some((VcId(0), flit(3, 1))));
            v.staging_mut(1).push_back(flit(4, 0));
        }
        ch.reset_node(1);
        assert!(!ch.has_work(1));
        assert_eq!(ch.route(1, 0, 1), RouteState::Unrouted);
        assert_eq!(ch.out_owner(1, 1, 0), None);
        assert_eq!(ch.out_credits(1, 1, 0), 4);
        assert_eq!(ch.buffered_flits(1), 0);
    }
}
