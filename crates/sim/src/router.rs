//! Per-node router microarchitecture: input-buffered virtual channels,
//! credit-based flow control, one-flit-per-cycle links.
//!
//! This is the "data path" half of Figure 1/3: input buffers with one FIFO
//! per virtual channel, a connection unit (crossbar with per-output
//! round-robin arbitration), output registers onto the links, and credit
//! counters tracking downstream buffer space. The control half (routing)
//! lives behind the [`crate::routing::NodeController`] trait.

use crate::flit::Flit;
use ftr_topo::{PortId, VcId};
use std::collections::VecDeque;

/// Routing state of one input virtual channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteState {
    /// No decision yet for the message at the FIFO front.
    Unrouted,
    /// Message is being delivered locally.
    Local,
    /// Message holds this output channel.
    Out(PortId, VcId),
}

/// Progress of the routing decision for the head at the FIFO front.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecisionPhase {
    /// The decision is being computed; this many cycles remain.
    Waiting(u32),
    /// The decision latency elapsed; the verdict applies (and is retried
    /// for free on contention).
    Ready,
}

/// One input virtual channel.
#[derive(Clone, Debug)]
pub struct InputVc {
    /// Buffered flits (capacity enforced by upstream credits).
    pub fifo: VecDeque<Flit>,
    /// Current route of the message at the front.
    pub route: RouteState,
    /// Decision progress (`None` = head not yet seen).
    pub phase: Option<DecisionPhase>,
    /// Whether the decision steps of the current head were already counted.
    pub counted: bool,
    /// The routed message was misrouted by faults (fairness hint for the
    /// switch allocator, §3 "Scheduling and Fairness").
    pub misrouted: bool,
}

impl InputVc {
    fn new() -> Self {
        InputVc {
            fifo: VecDeque::new(),
            route: RouteState::Unrouted,
            phase: None,
            counted: false,
            misrouted: false,
        }
    }

    /// Resets per-message decision state (after a tail leaves or a kill).
    pub fn reset_route(&mut self) {
        self.route = RouteState::Unrouted;
        self.phase = None;
        self.counted = false;
        self.misrouted = false;
    }
}

/// One output virtual channel: allocation state + credits.
#[derive(Clone, Copy, Debug)]
pub struct OutputVc {
    /// Message currently holding this channel (set from head until tail).
    pub owner: Option<crate::flit::MessageId>,
    /// Free buffer slots in the downstream input FIFO.
    pub credits: u32,
}

/// The router of one node.
#[derive(Clone, Debug)]
pub struct RouterNode {
    /// `[port][vc]` input units; `port == degree` is the injection port
    /// (single VC at index 0).
    pub inputs: Vec<Vec<InputVc>>,
    /// `[port][vc]` output units.
    pub outputs: Vec<Vec<OutputVc>>,
    /// Per port: flit placed on the link this cycle (with its VC tag).
    pub out_reg: Vec<Option<(VcId, Flit)>>,
    /// Per output port: round-robin arbitration pointer.
    pub rr: Vec<usize>,
    /// Locally generated flits waiting to enter the injection FIFO.
    pub staging: VecDeque<Flit>,
    /// Per port: flits still assigned to this output (adaptivity signal).
    pub out_assigned: Vec<u32>,
}

impl RouterNode {
    /// Builds a node with `degree` network ports + 1 injection port,
    /// `vcs` virtual channels and `depth` flits of buffer per VC.
    pub fn new(degree: usize, vcs: usize, depth: u32) -> Self {
        let mut inputs: Vec<Vec<InputVc>> =
            (0..degree).map(|_| (0..vcs).map(|_| InputVc::new()).collect()).collect();
        inputs.push(vec![InputVc::new()]); // injection port, one lane
        RouterNode {
            inputs,
            outputs: (0..degree)
                .map(|_| (0..vcs).map(|_| OutputVc { owner: None, credits: depth }).collect())
                .collect(),
            out_reg: vec![None; degree],
            rr: vec![0; degree],
            staging: VecDeque::new(),
            out_assigned: vec![0; degree],
        }
    }

    /// Index of the injection pseudo-port.
    pub fn injection_port(&self) -> usize {
        self.inputs.len() - 1
    }

    /// Total flits buffered in this router (inputs + output registers),
    /// excluding the staging queue.
    pub fn buffered_flits(&self) -> usize {
        let inp: usize = self.inputs.iter().flatten().map(|vc| vc.fifo.len()).sum();
        let reg = self.out_reg.iter().filter(|r| r.is_some()).count();
        inp + reg
    }

    /// Whether this node has any flit-bearing work for the engine: flits
    /// staged for injection, buffered in an input FIFO, or sitting in an
    /// output register. This is the activation predicate of the network's
    /// active-set scheduler — a node without work is skipped by every
    /// phase of [`crate::Network::step`] with no observable difference.
    pub fn has_work(&self) -> bool {
        !self.staging.is_empty()
            || self.out_reg.iter().any(|r| r.is_some())
            || self.inputs.iter().flatten().any(|vc| !vc.fifo.is_empty())
    }

    /// Whether any output VC of `port` is allocatable (idle + credit).
    pub fn out_channel_free(&self, port: usize, vc: usize) -> bool {
        let o = &self.outputs[port][vc];
        o.owner.is_none() && o.credits > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{Flit, FlitKind, Header, MessageId};
    use ftr_topo::NodeId;

    #[test]
    fn geometry() {
        let r = RouterNode::new(4, 2, 4);
        assert_eq!(r.inputs.len(), 5);
        assert_eq!(r.injection_port(), 4);
        assert_eq!(r.inputs[0].len(), 2);
        assert_eq!(r.inputs[4].len(), 1);
        assert_eq!(r.outputs.len(), 4);
        assert_eq!(r.outputs[0][0].credits, 4);
        assert!(r.out_channel_free(0, 0));
    }

    #[test]
    fn buffered_flit_count() {
        let mut r = RouterNode::new(2, 1, 4);
        let h = Header::new(MessageId(1), NodeId(0), NodeId(1), 2);
        r.inputs[0][0].fifo.push_back(Flit { kind: FlitKind::Head(h), msg: h.msg, seq: 0 });
        r.out_reg[1] = Some((VcId(0), Flit { kind: FlitKind::Tail, msg: h.msg, seq: 1 }));
        assert_eq!(r.buffered_flits(), 2);
    }

    #[test]
    fn route_reset() {
        let mut vc = InputVc::new();
        vc.route = RouteState::Out(PortId(1), VcId(0));
        vc.phase = Some(DecisionPhase::Waiting(2));
        vc.counted = true;
        vc.reset_route();
        assert_eq!(vc.route, RouteState::Unrouted);
        assert_eq!(vc.phase, None);
        assert!(!vc.counted);
    }
}
