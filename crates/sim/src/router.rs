//! Per-input-VC routing state of the router microarchitecture.
//!
//! The data-path half of Figure 1/3 — input FIFOs per virtual channel,
//! credit counters, output registers, round-robin connection unit — lives
//! in the struct-of-arrays `crate::arena`; this module keeps the small
//! state machines each input VC carries: the current [`RouteState`] of the
//! message at the FIFO front and the [`DecisionPhase`] of its pending
//! routing decision. The control half (routing) lives behind the
//! [`crate::routing::NodeController`] trait.

use ftr_topo::{PortId, VcId};

/// Routing state of one input virtual channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteState {
    /// No decision yet for the message at the FIFO front.
    Unrouted,
    /// Message is being delivered locally.
    Local,
    /// Message holds this output channel.
    Out(PortId, VcId),
}

/// Progress of the routing decision for the head at the FIFO front.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecisionPhase {
    /// The decision is being computed; this many cycles remain.
    Waiting(u32),
    /// The decision latency elapsed; the verdict applies (and is retried
    /// for free on contention).
    Ready,
}
