//! Distributed fault detection: heartbeat / suspicion / alarm.
//!
//! The oracle-notified fault model (`Network::inject_link_fault` calling
//! `on_fault` directly) sidesteps the paper's premise that endpoint
//! control units *learn* fault state through control messages. This
//! module closes that gap with a protocol-level detection layer:
//!
//! * every [`NodeController::on_tick`] period, a [`Detector`] sends a
//!   ping over each monitored port and checks whether the previous
//!   ping's pong came back;
//! * consecutive misses accumulate a per-neighbour suspicion counter;
//!   the first miss raises a [`EventKind::Suspect`], and when the
//!   counter reaches the configured threshold an [`EventKind::Alarm`]
//!   fires and the wrapped algorithm's `on_fault` runs — entering the
//!   existing deactivation/RESET-wave machinery purely from detection;
//! * a pong resuming on an alarmed port un-suspects it and runs the
//!   wrapped algorithm's `on_repair`, so monotone fault knowledge is
//!   un-learned the same way the oracle would have done it.
//!
//! Wrap any algorithm with [`WithDetection`] and run the network with a
//! [`crate::NetworkBuilder::tick_period`] of at least
//! [`MIN_SAFE_TICK_PERIOD`] cycles; combined with
//! [`crate::FaultPlan::silenced`] this is the **no-oracle mode**: faults
//! keep their physical effect but deliver no notification, and recovery
//! depends entirely on the protocol noticing.
//!
//! Detection latency is bounded by `tick_period × (miss_threshold + 1)`
//! cycles; false positives are impossible in a fault-free network as
//! long as the tick period leaves room for the two-cycle ping/pong
//! round trip (see [`MIN_SAFE_TICK_PERIOD`]).

use crate::flit::Header;
use crate::routing::{ControlMsg, Decision, NodeController, RouterView, RoutingAlgorithm};
use ftr_obs::EventKind;
use ftr_topo::{NodeId, PortId, Topology, VcId};

/// Distinguished first payload word of detection-layer messages. The
/// value itself is arbitrary; what matters is the three-word shape,
/// which no bundled algorithm interprets (NAFTA consumes exactly
/// two-word payloads, ROUTE_C one- and two-word payloads), so the
/// detector's traffic is transparent to the wrapped protocol.
pub const DET_TAG: i64 = 7001;

/// `payload[1]` of a liveness probe.
pub const DET_PING: i64 = 0;
/// `payload[1]` of a probe response.
pub const DET_PONG: i64 = 1;

/// Smallest tick period (cycles) that cannot produce false positives:
/// a ping sent at tick cycle `T` is delivered at `T+1` and its pong
/// lands at `T+2`, *after* the tick hook of cycle `T+2` has already
/// run — so a period of 2 or less counts every round trip as a miss.
pub const MIN_SAFE_TICK_PERIOD: u64 = 3;

/// Tuning knobs of the detection layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DetectorConfig {
    /// Consecutive missed heartbeats before suspicion hardens into an
    /// alarm (and the wrapped algorithm's `on_fault` runs).
    pub miss_threshold: u32,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig { miss_threshold: 3 }
    }
}

/// Per-monitored-port suspicion state.
#[derive(Clone, Copy, Debug, Default)]
struct PortMon {
    /// This port leads to a neighbour and is probed.
    monitored: bool,
    /// Consecutive ticks whose probe went unanswered.
    misses: u32,
    /// A pong arrived since the last tick.
    pong_seen: bool,
    /// The alarm fired (locally declared faulty); stays set until a
    /// pong resumes or an oracle repair notification clears it.
    alarmed: bool,
}

/// What one detector tick concluded (see [`Detector::tick`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TickOutcome {
    /// Ports to probe this tick (every monitored, un-alarmed-or-not
    /// port — alarmed ports keep being probed so recovery is noticed).
    pub pings: Vec<PortId>,
    /// Ports whose suspicion just reached the threshold: treat the
    /// link as faulty (run the algorithm's `on_fault`).
    pub alarms: Vec<PortId>,
    /// Alarmed ports whose pongs resumed: the link is usable again
    /// (run the algorithm's `on_repair`).
    pub recoveries: Vec<PortId>,
}

/// Reusable heartbeat/suspicion engine for one node — the state machine
/// alone, so it unit-tests without a network. [`DetectorController`]
/// adapts it to the [`NodeController`] control-plane hooks.
#[derive(Clone, Debug)]
pub struct Detector {
    node: NodeId,
    cfg: DetectorConfig,
    ports: Vec<PortMon>,
    /// Tick counter, echoed in probe payloads for trace debugging.
    seq: i64,
    /// Trace events pending collection by `drain_events`.
    events: Vec<EventKind>,
}

impl Detector {
    /// A detector for `node` probing `monitored` ports (its connected
    /// neighbours); `degree` sizes the port table.
    pub fn new(node: NodeId, degree: usize, monitored: &[PortId], cfg: DetectorConfig) -> Self {
        let mut ports = vec![PortMon::default(); degree];
        for p in monitored {
            ports[p.idx()].monitored = true;
        }
        Detector { node, cfg, ports, seq: 0, events: Vec::new() }
    }

    /// The configured miss threshold.
    pub fn miss_threshold(&self) -> u32 {
        self.cfg.miss_threshold
    }

    /// True while the port is locally declared faulty.
    pub fn alarmed(&self, p: PortId) -> bool {
        self.ports[p.idx()].alarmed
    }

    /// Current consecutive-miss count of the port.
    pub fn misses(&self, p: PortId) -> u32 {
        self.ports[p.idx()].misses
    }

    /// One detection period: settles the previous round's probes
    /// (miss/suspect/alarm/recovery bookkeeping) and schedules this
    /// round's pings. Ports are evaluated in ascending order, so the
    /// outcome — and the trace events buffered for
    /// [`Detector::drain_events`] — is deterministic.
    pub fn tick(&mut self) -> TickOutcome {
        let mut out = TickOutcome::default();
        let threshold = self.cfg.miss_threshold;
        let first_round = self.seq == 0;
        for (i, m) in self.ports.iter_mut().enumerate() {
            if !m.monitored {
                continue;
            }
            let p = PortId(i as u8);
            if m.pong_seen {
                m.pong_seen = false;
                m.misses = 0;
                if m.alarmed {
                    m.alarmed = false;
                    out.recoveries.push(p);
                }
            } else if !first_round {
                // no probe is outstanding before the first tick — a
                // missing pong only counts once a ping was sent
                m.misses += 1;
                if !m.alarmed {
                    self.events.push(EventKind::Suspect {
                        node: self.node,
                        port: p,
                        misses: m.misses,
                    });
                    if m.misses >= threshold {
                        m.alarmed = true;
                        self.events.push(EventKind::Alarm { node: self.node, port: p });
                        out.alarms.push(p);
                    }
                }
            }
            self.events.push(EventKind::Heartbeat { node: self.node, port: p, pong: false });
            out.pings.push(p);
        }
        self.seq += 1;
        out
    }

    /// The ping control message for one port this tick.
    pub fn ping_msg(&self, p: PortId) -> ControlMsg {
        ControlMsg { port: p, payload: vec![DET_TAG, DET_PING, self.seq] }
    }

    /// True if `payload` is detection-layer traffic.
    pub fn is_detector_payload(payload: &[i64]) -> bool {
        payload.len() == 3 && payload[0] == DET_TAG
    }

    /// Handles an incoming detector payload from the neighbour behind
    /// `from`: pings are answered with a pong, pongs mark the port
    /// live. Returns the messages to send (the pong, if any). Callers
    /// must have checked [`Detector::is_detector_payload`].
    pub fn on_payload(&mut self, from: PortId, payload: &[i64]) -> Vec<ControlMsg> {
        debug_assert!(Self::is_detector_payload(payload));
        match payload[1] {
            DET_PING => {
                self.events.push(EventKind::Heartbeat { node: self.node, port: from, pong: true });
                vec![ControlMsg { port: from, payload: vec![DET_TAG, DET_PONG, payload[2]] }]
            }
            DET_PONG => {
                if let Some(m) = self.ports.get_mut(from.idx()) {
                    m.pong_seen = true;
                }
                Vec::new()
            }
            _ => Vec::new(),
        }
    }

    /// An oracle `on_fault` notification for `port`: align the detector
    /// so it does not re-alarm a fault the protocol already knows.
    pub fn note_oracle_fault(&mut self, port: PortId) {
        if let Some(m) = self.ports.get_mut(port.idx()) {
            m.alarmed = true;
            m.misses = self.cfg.miss_threshold;
            m.pong_seen = false;
        }
    }

    /// An oracle `on_repair` notification for `port`: clear suspicion.
    pub fn note_oracle_repair(&mut self, port: PortId) {
        if let Some(m) = self.ports.get_mut(port.idx()) {
            m.alarmed = false;
            m.misses = 0;
            m.pong_seen = false;
        }
    }

    /// Takes the trace events buffered since the last drain.
    pub fn drain_events(&mut self) -> Vec<EventKind> {
        std::mem::take(&mut self.events)
    }
}

/// [`NodeController`] adapter: runs a [`Detector`] beside any wrapped
/// controller, intercepting detection-layer payloads and translating
/// alarms/recoveries into the wrapped algorithm's `on_fault` /
/// `on_repair` — the detection-triggered entry into its deactivation
/// and RESET-wave machinery.
pub struct DetectorController {
    inner: Box<dyn NodeController>,
    det: Detector,
}

impl DetectorController {
    /// Wraps `inner` with a detector probing `monitored` ports.
    pub fn new(inner: Box<dyn NodeController>, det: Detector) -> Self {
        DetectorController { inner, det }
    }

    /// The embedded detector (diagnostics).
    pub fn detector(&self) -> &Detector {
        &self.det
    }
}

impl NodeController for DetectorController {
    fn route(
        &mut self,
        view: &RouterView<'_>,
        header: &mut Header,
        in_port: Option<PortId>,
        in_vc: VcId,
    ) -> Decision {
        self.inner.route(view, header, in_port, in_vc)
    }

    fn on_tick(&mut self, view: &RouterView<'_>, cycle: u64) -> Vec<ControlMsg> {
        let _ = cycle;
        let out = self.det.tick();
        let mut msgs = Vec::new();
        // recoveries first: un-learning must precede this round's pings
        // so the wrapped algorithm's wave is enqueued before probe noise
        for p in &out.recoveries {
            msgs.extend(self.inner.on_repair(view, *p));
        }
        for p in &out.alarms {
            msgs.extend(self.inner.on_fault(view, *p));
        }
        for p in &out.pings {
            msgs.push(self.det.ping_msg(*p));
        }
        msgs
    }

    fn on_control(
        &mut self,
        view: &RouterView<'_>,
        from: PortId,
        payload: &[i64],
    ) -> Vec<ControlMsg> {
        if Detector::is_detector_payload(payload) {
            self.det.on_payload(from, payload)
        } else {
            self.inner.on_control(view, from, payload)
        }
    }

    fn on_fault(&mut self, view: &RouterView<'_>, port: PortId) -> Vec<ControlMsg> {
        self.det.note_oracle_fault(port);
        self.inner.on_fault(view, port)
    }

    fn on_repair(&mut self, view: &RouterView<'_>, port: PortId) -> Vec<ControlMsg> {
        self.det.note_oracle_repair(port);
        self.inner.on_repair(view, port)
    }

    fn drain_events(&mut self) -> Vec<EventKind> {
        let mut evs = self.det.drain_events();
        evs.extend(self.inner.drain_events());
        evs
    }

    fn state_word(&self) -> i64 {
        self.inner.state_word()
    }

    fn relation(
        &mut self,
        view: &RouterView<'_>,
        header: &Header,
        in_port: Option<PortId>,
        in_vc: VcId,
    ) -> Vec<(PortId, VcId)> {
        self.inner.relation(view, header, in_port, in_vc)
    }
}

/// Algorithm wrapper adding the detection layer to every node's
/// controller: `WithDetection::new(Nafta::new(mesh), cfg)` behaves
/// exactly like NAFTA except that fault knowledge can also arrive via
/// heartbeat timeouts — enabling the no-oracle mode.
pub struct WithDetection<A> {
    inner: A,
    cfg: DetectorConfig,
}

impl<A: RoutingAlgorithm> WithDetection<A> {
    /// Wraps `inner` with per-node detectors configured by `cfg`.
    pub fn new(inner: A, cfg: DetectorConfig) -> Self {
        WithDetection { inner, cfg }
    }
}

impl<A: RoutingAlgorithm> RoutingAlgorithm for WithDetection<A> {
    fn name(&self) -> String {
        format!("{}+detect", self.inner.name())
    }

    fn num_vcs(&self) -> usize {
        self.inner.num_vcs()
    }

    fn controller(&self, topo: &dyn Topology, node: NodeId) -> Box<dyn NodeController> {
        let monitored: Vec<PortId> = topo.neighbors(node).into_iter().map(|(p, _)| p).collect();
        let det = Detector::new(node, topo.degree(), &monitored, self.cfg);
        Box::new(DetectorController::new(self.inner.controller(topo, node), det))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(threshold: u32) -> Detector {
        Detector::new(
            NodeId(0),
            4,
            &[PortId(0), PortId(2)],
            DetectorConfig { miss_threshold: threshold },
        )
    }

    fn pong(d: &mut Detector, p: PortId) {
        let out = d.on_payload(p, &[DET_TAG, DET_PONG, 0]);
        assert!(out.is_empty(), "pongs are not answered");
    }

    #[test]
    fn suspicion_fires_after_exactly_n_missed_heartbeats() {
        let mut d = det(3);
        assert!(d.tick().alarms.is_empty(), "first tick sends, cannot miss");
        // port 0 answers, port 2 never does
        for round in 1..=2 {
            pong(&mut d, PortId(0));
            let out = d.tick();
            assert!(out.alarms.is_empty(), "below threshold at round {round}");
            assert_eq!(d.misses(PortId(2)), round);
        }
        pong(&mut d, PortId(0));
        let out = d.tick();
        assert_eq!(out.alarms, vec![PortId(2)], "alarm at exactly N=3 misses");
        assert!(d.alarmed(PortId(2)));
        assert!(!d.alarmed(PortId(0)));
        // further silence does not re-alarm
        let out = d.tick();
        assert!(out.alarms.is_empty(), "alarm fires once");
        // the alarmed port keeps being probed so recovery is noticed
        assert!(out.pings.contains(&PortId(2)));
    }

    #[test]
    fn flapping_within_threshold_raises_no_alarm() {
        let mut d = det(3);
        d.tick();
        // two silent rounds (link flapped), then the pong resumes
        d.tick();
        d.tick();
        assert_eq!(d.misses(PortId(0)), 2, "suspicion accumulated");
        pong(&mut d, PortId(0));
        pong(&mut d, PortId(2));
        let out = d.tick();
        assert!(out.alarms.is_empty());
        assert!(out.recoveries.is_empty(), "never alarmed, nothing to recover");
        assert_eq!(d.misses(PortId(0)), 0, "suspicion cleared by the pong");
        // the suspect trace of the flap was still recorded
        let evs = d.drain_events();
        assert!(evs.iter().any(|e| matches!(e, EventKind::Suspect { port: PortId(0), .. })));
        assert!(!evs.iter().any(|e| matches!(e, EventKind::Alarm { .. })));
    }

    #[test]
    fn pong_resumption_after_repair_unsuspects() {
        let mut d = det(2);
        d.tick();
        d.tick();
        let out = d.tick();
        assert_eq!(out.alarms, vec![PortId(0), PortId(2)]);
        // repair: pongs resume on port 0 only
        pong(&mut d, PortId(0));
        let out = d.tick();
        assert_eq!(out.recoveries, vec![PortId(0)]);
        assert!(!d.alarmed(PortId(0)));
        assert!(d.alarmed(PortId(2)), "still-silent port stays alarmed");
    }

    #[test]
    fn ping_is_answered_with_matching_pong() {
        let mut d = det(3);
        let replies = d.on_payload(PortId(1), &[DET_TAG, DET_PING, 41]);
        assert_eq!(
            replies,
            vec![ControlMsg { port: PortId(1), payload: vec![DET_TAG, DET_PONG, 41] }]
        );
    }

    #[test]
    fn oracle_notifications_align_the_detector() {
        let mut d = det(2);
        d.note_oracle_fault(PortId(0));
        assert!(d.alarmed(PortId(0)));
        d.tick();
        let out = d.tick();
        assert!(out.alarms.is_empty(), "already alarmed by the oracle");
        d.note_oracle_repair(PortId(0));
        assert!(!d.alarmed(PortId(0)));
    }

    #[test]
    fn detector_payload_shape_is_three_words() {
        assert!(Detector::is_detector_payload(&[DET_TAG, DET_PING, 0]));
        assert!(!Detector::is_detector_payload(&[DET_TAG, DET_PING]));
        assert!(!Detector::is_detector_payload(&[1, 2]));
        assert!(!Detector::is_detector_payload(&[1, 2, 3]));
    }
}
