//! Resumable batched campaign fleets.
//!
//! A statistical fault-tolerance campaign is 10⁴+ independent
//! simulations, each deterministic for its seed. At that scale two
//! failure modes dominate: a wall-clock interruption (CI timeout,
//! preempted box) that throws away hours of finished work, and a single
//! diverging run whose panic is anonymous among thousands of siblings.
//! [`run_fleet`] addresses both on top of the [`crate::sweep`]
//! machinery:
//!
//! - **Resumability.** Every completed run appends one
//!   `<key> <payload>` line to a *manifest* journal and flushes it.
//!   A rerun with the same manifest decodes finished runs from the
//!   journal instead of executing them, so an interrupted fleet
//!   continues where it stopped. A torn final line (the write that was
//!   interrupted) fails to decode and is simply re-executed — the
//!   journal needs no checksums to be crash-safe, because re-running a
//!   deterministic job is always sound.
//! - **Attribution.** Runs execute under `catch_unwind`; survivors keep
//!   going (and still journal), and the collected failures re-raise as
//!   one panic naming each failing run's *key* — not an index into a
//!   shuffled work list.
//!
//! The job is described by a [`FleetJob`]: keying, execution and the
//! journal codec in one place, so the codec cannot drift from the type
//! it encodes.

use crate::sweep::panic_message;
use crossbeam::thread;
use std::collections::HashMap;
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;

/// One campaign job: how to key, execute and journal a run.
///
/// Implementations must be deterministic per input — resuming re-uses
/// journaled outputs, so a nondeterministic job would make "resumed"
/// and "executed" fleets diverge.
pub trait FleetJob: Sync {
    /// Per-run parameters (e.g. a seed plus a fault count).
    type Input: Send + Sync;
    /// Per-run result, reconstructible from its journal payload.
    type Output: Send;

    /// Stable journal key for an input. Must be unique across the
    /// fleet and contain no whitespace (it delimits the journal line).
    fn key(&self, input: &Self::Input) -> String;

    /// Executes one run. May panic; the fleet attributes the panic to
    /// [`FleetJob::key`].
    fn run(&self, input: &Self::Input) -> Self::Output;

    /// Encodes an output as a single-line journal payload (no `\n`).
    fn encode(&self, out: &Self::Output) -> String;

    /// Decodes a journal payload. `Err` marks the run incomplete (torn
    /// line, older codec) and the fleet re-executes it.
    fn decode(&self, payload: &str) -> Result<Self::Output, String>;
}

/// What a fleet invocation did, with outputs in input order.
#[derive(Debug)]
pub struct FleetOutcome<O> {
    /// Per-input outputs, index-aligned with the `inputs` vector.
    pub outs: Vec<O>,
    /// Runs reconstructed from the manifest without executing.
    pub resumed: usize,
    /// Runs executed (and journaled) by this invocation.
    pub executed: usize,
}

/// Runs `inputs` through `job` in parallel (bounded by `max_threads`),
/// journaling each completion to `manifest` and resuming any runs the
/// manifest already records. Returns outputs in input order.
///
/// Errors are I/O on the manifest itself; panics inside runs are
/// collected and re-raised naming each failing run's key.
pub fn run_fleet<J: FleetJob>(
    job: &J,
    inputs: &[J::Input],
    manifest: &Path,
    max_threads: usize,
) -> std::io::Result<FleetOutcome<J::Output>> {
    let n = inputs.len();

    // load the journal: last write per key wins, undecodable lines are
    // treated as never-completed
    let mut journal: HashMap<String, String> = HashMap::new();
    match std::fs::read_to_string(manifest) {
        Ok(text) => {
            for line in text.lines() {
                if let Some((k, payload)) = line.split_once(' ') {
                    journal.insert(k.to_string(), payload.to_string());
                }
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }

    let keys: Vec<String> = inputs
        .iter()
        .map(|i| {
            let k = job.key(i);
            assert!(
                !k.is_empty() && !k.contains(char::is_whitespace),
                "fleet key {k:?} must be non-empty and whitespace-free"
            );
            k
        })
        .collect();
    {
        let mut seen = std::collections::HashSet::new();
        for k in &keys {
            assert!(seen.insert(k), "fleet key {k:?} is not unique across the fleet");
        }
    }

    let slots: Vec<parking_lot::Mutex<Option<std::thread::Result<J::Output>>>> =
        (0..n).map(|_| parking_lot::Mutex::new(None)).collect();
    let mut pending: Vec<usize> = Vec::new();
    let mut resumed = 0usize;
    for (i, key) in keys.iter().enumerate() {
        match journal.get(key).map(|p| job.decode(p)) {
            Some(Ok(out)) => {
                *slots[i].lock() = Some(Ok(out));
                resumed += 1;
            }
            _ => pending.push(i),
        }
    }
    let executed = pending.len();

    if !pending.is_empty() {
        if let Some(dir) = manifest.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let writer = parking_lot::Mutex::new(
            std::fs::OpenOptions::new().create(true).append(true).open(manifest)?,
        );

        let threads = max_threads.max(1).min(pending.len());
        let cursor = std::sync::atomic::AtomicUsize::new(0);
        let pending_ref = &pending;
        let keys_ref = &keys;
        let slots_ref = &slots;
        let writer_ref = &writer;
        thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|_| loop {
                    let p = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(&i) = pending_ref.get(p) else { break };
                    let out = catch_unwind(AssertUnwindSafe(|| job.run(&inputs[i])));
                    if let Ok(out) = &out {
                        // journal before publishing: a run only counts as
                        // complete once its line is durably appended
                        let line = format!("{} {}\n", keys_ref[i], job.encode(out));
                        debug_assert_eq!(line.matches('\n').count(), 1, "payload must be one line");
                        let mut w = writer_ref.lock();
                        if w.write_all(line.as_bytes()).and_then(|()| w.flush()).is_err() {
                            // the run itself succeeded; keep its output and
                            // let a future resume re-execute it instead
                        }
                    }
                    *slots_ref[i].lock() = Some(out);
                });
            }
        })
        .expect("fleet worker panicked outside a run");
    }

    let mut outs = Vec::with_capacity(n);
    let mut failures: Vec<(usize, String)> = Vec::new();
    for (i, slot) in slots.into_iter().enumerate() {
        match slot.into_inner() {
            Some(Ok(o)) => outs.push(o),
            Some(Err(payload)) => failures.push((i, panic_message(payload.as_ref()))),
            None => failures.push((i, "run never executed".to_string())),
        }
    }
    if !failures.is_empty() {
        let list: Vec<String> =
            failures.iter().map(|(i, m)| format!("run {}: {m}", keys[*i])).collect();
        panic!("fleet: {} of {n} runs panicked — {}", failures.len(), list.join("; "));
    }
    Ok(FleetOutcome { outs, resumed, executed })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Doubles its input; counts executions so tests can tell a resumed
    /// run from an executed one.
    struct Doubler {
        ran: AtomicUsize,
        panic_on: Option<u64>,
    }

    impl Doubler {
        fn new() -> Self {
            Doubler { ran: AtomicUsize::new(0), panic_on: None }
        }
    }

    impl FleetJob for Doubler {
        type Input = u64;
        type Output = u64;
        fn key(&self, input: &u64) -> String {
            format!("seed{input}")
        }
        fn run(&self, input: &u64) -> u64 {
            self.ran.fetch_add(1, Ordering::Relaxed);
            if self.panic_on == Some(*input) {
                panic!("diverged at {input}");
            }
            input * 2
        }
        fn encode(&self, out: &u64) -> String {
            out.to_string()
        }
        fn decode(&self, payload: &str) -> Result<u64, String> {
            payload.parse().map_err(|e| format!("bad payload: {e}"))
        }
    }

    fn tmp_manifest(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ftr-fleet-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn runs_everything_then_resumes_everything() {
        let m = tmp_manifest("full.txt");
        let inputs: Vec<u64> = (0..20).collect();
        let job = Doubler::new();
        let first = run_fleet(&job, &inputs, &m, 4).unwrap();
        assert_eq!(first.outs, (0..20).map(|x| x * 2).collect::<Vec<_>>());
        assert_eq!((first.resumed, first.executed), (0, 20));
        assert_eq!(job.ran.load(Ordering::Relaxed), 20);

        let job2 = Doubler::new();
        let second = run_fleet(&job2, &inputs, &m, 4).unwrap();
        assert_eq!(second.outs, first.outs);
        assert_eq!((second.resumed, second.executed), (20, 0));
        assert_eq!(job2.ran.load(Ordering::Relaxed), 0, "resume must not re-run");
    }

    #[test]
    fn partial_journal_runs_only_the_remainder() {
        let m = tmp_manifest("partial.txt");
        std::fs::write(&m, "seed0 0\nseed3 6\n").unwrap();
        let inputs: Vec<u64> = (0..6).collect();
        let job = Doubler::new();
        let out = run_fleet(&job, &inputs, &m, 2).unwrap();
        assert_eq!(out.outs, vec![0, 2, 4, 6, 8, 10]);
        assert_eq!((out.resumed, out.executed), (2, 4));
        assert_eq!(job.ran.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn torn_final_line_is_reexecuted_not_fatal() {
        let m = tmp_manifest("torn.txt");
        // a crash mid-append leaves a key with a truncated payload — and
        // possibly no payload separator at all
        std::fs::write(&m, "seed0 0\nseed1 2x\nseed2\n").unwrap();
        let inputs: Vec<u64> = (0..3).collect();
        let job = Doubler::new();
        let out = run_fleet(&job, &inputs, &m, 2).unwrap();
        assert_eq!(out.outs, vec![0, 2, 4]);
        assert_eq!((out.resumed, out.executed), (1, 2));
        // the journal now has good lines for the re-run keys; a second
        // resume executes nothing
        let job2 = Doubler::new();
        let again = run_fleet(&job2, &inputs, &m, 2).unwrap();
        assert_eq!((again.resumed, again.executed), (3, 0));
    }

    #[test]
    fn panics_are_attributed_to_keys_and_survivors_journal() {
        let m = tmp_manifest("panic.txt");
        let inputs: Vec<u64> = (0..8).collect();
        let mut job = Doubler::new();
        job.panic_on = Some(5);
        let res = catch_unwind(AssertUnwindSafe(|| run_fleet(&job, &inputs, &m, 2)));
        let msg = panic_message(res.expect_err("must propagate").as_ref());
        assert!(msg.contains("1 of 8 runs panicked"), "got: {msg}");
        assert!(msg.contains("run seed5: diverged at 5"), "got: {msg}");
        // the 7 survivors journaled; a resume runs only the failed seed
        let job2 = Doubler::new();
        let out = run_fleet(&job2, &inputs, &m, 2).unwrap();
        assert_eq!((out.resumed, out.executed), (7, 1));
        assert_eq!(out.outs, (0..8).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "not unique")]
    fn duplicate_keys_are_rejected() {
        let m = tmp_manifest("dup.txt");
        struct Const;
        impl FleetJob for Const {
            type Input = u64;
            type Output = u64;
            fn key(&self, _: &u64) -> String {
                "same".into()
            }
            fn run(&self, i: &u64) -> u64 {
                *i
            }
            fn encode(&self, o: &u64) -> String {
                o.to_string()
            }
            fn decode(&self, p: &str) -> Result<u64, String> {
                p.parse().map_err(|_| "bad".into())
            }
        }
        let _ = run_fleet(&Const, &[1, 2], &m, 1);
    }

    #[test]
    fn empty_fleet_is_a_noop() {
        let m = tmp_manifest("empty.txt");
        let out = run_fleet(&Doubler::new(), &[], &m, 4).unwrap();
        assert!(out.outs.is_empty());
        assert_eq!((out.resumed, out.executed), (0, 0));
        assert!(!m.exists(), "no journal is created for an empty fleet");
    }
}
