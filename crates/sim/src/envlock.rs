//! Serialized environment mutation for tests.
//!
//! `std::env::set_var` mutates process-global state while the test
//! harness runs tests concurrently, so two tests touching *any*
//! environment variables can race — one reads while the other writes, or
//! a variable leaks from one test into another. Every env-mutating test
//! in the workspace goes through [`EnvGuard`]: it holds a process-global
//! lock for the guard's lifetime (serializing all env-mutating tests,
//! across crates, through this one chokepoint) and restores each touched
//! variable to its pre-guard value on drop, even when the test panics.
//!
//! ```
//! let mut g = ftr_sim::envlock::EnvGuard::new();
//! g.set("FTR_THREADS", "3");
//! // ... assertions ...
//! // drop restores FTR_THREADS and releases the lock
//! ```
//!
//! Tests that only *read* a variable another test mutates should also
//! take the guard (a read under the lock cannot interleave with a
//! mutation elsewhere).

use std::sync::{Mutex, MutexGuard, OnceLock};

fn global_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Holds the process-global env lock and records the original value of
/// every variable mutated through it; restores them on drop.
#[must_use = "the guard serializes and restores env mutations for its lifetime"]
pub struct EnvGuard {
    _lock: MutexGuard<'static, ()>,
    saved: Vec<(String, Option<String>)>,
}

impl EnvGuard {
    /// Acquires the global env lock (blocking until other guards drop).
    /// A guard held by a panicked test still restored its variables in
    /// its drop, so a poisoned lock is safe to take over.
    pub fn new() -> Self {
        let lock = global_lock().lock().unwrap_or_else(|poison| poison.into_inner());
        EnvGuard { _lock: lock, saved: Vec::new() }
    }

    fn remember(&mut self, name: &str) {
        if !self.saved.iter().any(|(n, _)| n == name) {
            self.saved.push((name.to_string(), std::env::var(name).ok()));
        }
    }

    /// Sets `name=value`, remembering the pre-guard value for restore.
    pub fn set(&mut self, name: &str, value: &str) {
        self.remember(name);
        std::env::set_var(name, value);
    }

    /// Removes `name`, remembering the pre-guard value for restore.
    pub fn remove(&mut self, name: &str) {
        self.remember(name);
        std::env::remove_var(name);
    }
}

impl Default for EnvGuard {
    fn default() -> Self {
        EnvGuard::new()
    }
}

impl Drop for EnvGuard {
    fn drop(&mut self) {
        for (name, old) in self.saved.drain(..).rev() {
            match old {
                Some(v) => std::env::set_var(&name, v),
                None => std::env::remove_var(&name),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_restores_set_and_removed_vars() {
        const VAR: &str = "FTR_ENVLOCK_SELFTEST";
        {
            let mut g = EnvGuard::new();
            g.set(VAR, "first");
            g.set(VAR, "second");
            assert_eq!(std::env::var(VAR).as_deref(), Ok("second"));
            g.remove(VAR);
            assert!(std::env::var(VAR).is_err());
        }
        // the variable did not exist before the guard — restored to unset
        assert!(std::env::var(VAR).is_err());
        {
            std::env::set_var(VAR, "outer");
            let mut g = EnvGuard::new();
            g.remove(VAR);
            drop(g);
            assert_eq!(std::env::var(VAR).as_deref(), Ok("outer"), "restored to pre-guard value");
            std::env::remove_var(VAR);
        }
    }
}
