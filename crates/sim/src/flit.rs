//! Flits and message headers.
//!
//! Wormhole switching (§2.2): "every message in the network is divided into
//! flits (flow control units) transmitted in a pipelined fashion". Only the
//! head flit carries routing information; body/tail flits follow the path
//! the head reserved.

use ftr_topo::NodeId;
use serde::{Deserialize, Serialize};

/// Unique message identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MessageId(pub u64);

/// Routing information carried in the head flit. The message interface of
/// the rule-based router can *modify* headers in flight (§3 "Lifelock
/// Avoidance": messages on non-minimal paths due to faults are marked and
/// treated exceptionally), so the fields here are mutable state, not
/// immutable metadata.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Header {
    /// Message id.
    pub msg: MessageId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Total length in flits (head + body + tail).
    pub len_flits: u32,
    /// Set when the message was forced off a minimal path by faults.
    pub misrouted: bool,
    /// Hops taken so far (path-length counter for livelock control).
    pub hops: u32,
    /// Virtual-network tag (e.g. NAFTA's north-last / south-last choice).
    pub vnet: u8,
    /// Algorithm phase (e.g. ROUTE_C's increasing/decreasing coordinate
    /// phases).
    pub phase: u8,
}

impl Header {
    /// Creates a fresh header for an injected message.
    pub fn new(msg: MessageId, src: NodeId, dst: NodeId, len_flits: u32) -> Self {
        Header { msg, src, dst, len_flits, misrouted: false, hops: 0, vnet: 0, phase: 0 }
    }
}

/// Flit payload kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlitKind {
    /// Head flit carrying the header.
    Head(Header),
    /// Body flit.
    Body,
    /// Tail flit (releases channel state as it passes).
    Tail,
}

/// One flow-control unit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flit {
    /// Kind (head carries the header).
    pub kind: FlitKind,
    /// Owning message.
    pub msg: MessageId,
    /// Sequence number within the message (0 = head).
    pub seq: u32,
}

impl Flit {
    /// Builds the flit sequence of a whole message. A 1-flit message is a
    /// single head flit that also acts as tail.
    pub fn sequence(header: Header) -> Vec<Flit> {
        let n = header.len_flits.max(1);
        (0..n)
            .map(|seq| {
                let kind = if seq == 0 {
                    FlitKind::Head(header)
                } else if seq == n - 1 {
                    FlitKind::Tail
                } else {
                    FlitKind::Body
                };
                Flit { kind, msg: header.msg, seq }
            })
            .collect()
    }

    /// True for the last flit of its message (head-only messages included).
    pub fn is_tail(&self, len_flits: u32) -> bool {
        self.seq + 1 == len_flits.max(1)
    }

    /// The header if this is a head flit.
    pub fn header(&self) -> Option<&Header> {
        match &self.kind {
            FlitKind::Head(h) => Some(h),
            _ => None,
        }
    }

    /// Mutable header access for the message interface.
    pub fn header_mut(&mut self) -> Option<&mut Header> {
        match &mut self.kind {
            FlitKind::Head(h) => Some(h),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_structure() {
        let h = Header::new(MessageId(1), NodeId(0), NodeId(5), 4);
        let seq = Flit::sequence(h);
        assert_eq!(seq.len(), 4);
        assert!(matches!(seq[0].kind, FlitKind::Head(_)));
        assert!(matches!(seq[1].kind, FlitKind::Body));
        assert!(matches!(seq[2].kind, FlitKind::Body));
        assert!(matches!(seq[3].kind, FlitKind::Tail));
        assert!(seq[3].is_tail(4));
        assert!(!seq[0].is_tail(4));
    }

    #[test]
    fn single_flit_message() {
        let h = Header::new(MessageId(2), NodeId(1), NodeId(2), 1);
        let seq = Flit::sequence(h);
        assert_eq!(seq.len(), 1);
        assert!(matches!(seq[0].kind, FlitKind::Head(_)));
        assert!(seq[0].is_tail(1));
    }

    #[test]
    fn header_mutation_through_flit() {
        let h = Header::new(MessageId(3), NodeId(0), NodeId(9), 2);
        let mut seq = Flit::sequence(h);
        seq[0].header_mut().unwrap().misrouted = true;
        seq[0].header_mut().unwrap().hops = 7;
        let hh = seq[0].header().unwrap();
        assert!(hh.misrouted);
        assert_eq!(hh.hops, 7);
        assert!(seq[1].header().is_none());
    }
}
