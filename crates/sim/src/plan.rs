//! Scripted dynamic-fault lifecycles.
//!
//! A [`FaultPlan`] is a cycle-ordered script of fault injections and
//! repairs the network executes from inside [`crate::Network::step`], so a
//! whole fault campaign (inject at cycle c, repair d cycles later, under
//! live traffic) is deterministic for a given seed and reproducible across
//! machines and thread counts. Generators build common scenarios — random
//! transient link/node faults with a fixed repair delay — on top of the
//! same deterministic [`SimpleRng`] the static fault injectors use.

use ftr_topo::{NodeId, PortId, SimpleRng, Topology};

/// One scripted action on the network's fault state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Fail the link leaving this node through this port.
    FailLink(NodeId, PortId),
    /// Repair the link leaving this node through this port.
    RepairLink(NodeId, PortId),
    /// Fail this node.
    FailNode(NodeId),
    /// Repair this node.
    RepairNode(NodeId),
    /// Fail the link *silently*: full physical effect (worms ripped,
    /// link unusable) but no `on_fault` oracle notification — the
    /// endpoints must detect the loss themselves (no-oracle mode).
    FailLinkSilent(NodeId, PortId),
    /// Repair the link silently: the link carries traffic again but no
    /// `on_repair` notification fires — controllers re-learn through
    /// resumed liveness probes.
    RepairLinkSilent(NodeId, PortId),
    /// Fail this node silently (Byzantine-silent node: it just stops).
    FailNodeSilent(NodeId),
    /// Repair this node silently.
    RepairNodeSilent(NodeId),
}

/// A [`FaultAction`] scheduled at an absolute cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlannedAction {
    /// Cycle the action fires on (executed at the start of that cycle).
    pub cycle: u64,
    /// What happens.
    pub action: FaultAction,
}

/// A cycle-ordered script of fault injections and repairs.
///
/// Build one with [`FaultPlan::at`] / [`FaultPlan::transient_link`] or the
/// random generators, attach it through
/// [`crate::NetworkBuilder::fault_plan`] (or
/// [`crate::Network::set_fault_plan`]), and the network drains due actions
/// every cycle.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Sorted by cycle (stable: equal-cycle actions keep insertion order).
    actions: Vec<PlannedAction>,
    next: usize,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `action` at `cycle` (builder style).
    pub fn at(mut self, cycle: u64, action: FaultAction) -> Self {
        self.push(cycle, action);
        self
    }

    /// Schedules `action` at `cycle`.
    pub fn push(&mut self, cycle: u64, action: FaultAction) {
        debug_assert_eq!(self.next, 0, "plans are built before the network runs");
        self.actions.push(PlannedAction { cycle, action });
        self.actions.sort_by_key(|a| a.cycle);
    }

    /// Schedules a transient link fault: fail at `cycle`, repair
    /// `repair_after` cycles later.
    pub fn transient_link(self, cycle: u64, n: NodeId, p: PortId, repair_after: u64) -> Self {
        self.at(cycle, FaultAction::FailLink(n, p))
            .at(cycle + repair_after, FaultAction::RepairLink(n, p))
    }

    /// Schedules a transient node fault: fail at `cycle`, repair
    /// `repair_after` cycles later.
    pub fn transient_node(self, cycle: u64, n: NodeId, repair_after: u64) -> Self {
        self.at(cycle, FaultAction::FailNode(n))
            .at(cycle + repair_after, FaultAction::RepairNode(n))
    }

    /// Generates `count` random transient link faults: each picks a
    /// distinct link, fails it at a random cycle in `window`, and repairs
    /// it `repair_after` cycles later. Deterministic per seed.
    pub fn random_transient_links(
        topo: &dyn Topology,
        count: usize,
        window: std::ops::Range<u64>,
        repair_after: u64,
        seed: u64,
    ) -> Self {
        let mut rng = SimpleRng::new(seed);
        let links = topo.links();
        let mut picked: Vec<usize> = Vec::new();
        let mut plan = FaultPlan::new();
        let span = window.end.saturating_sub(window.start).max(1);
        while picked.len() < count.min(links.len()) {
            let i = rng.below(links.len());
            if picked.contains(&i) {
                continue;
            }
            picked.push(i);
            let at = window.start + rng.next_u64() % span;
            plan = plan.transient_link(at, links[i].node, links[i].port, repair_after);
        }
        plan
    }

    /// Generates `count` random transient node faults (distinct nodes,
    /// random fault cycle in `window`, repair after `repair_after`).
    pub fn random_transient_nodes(
        topo: &dyn Topology,
        count: usize,
        window: std::ops::Range<u64>,
        repair_after: u64,
        seed: u64,
    ) -> Self {
        let mut rng = SimpleRng::new(seed ^ 0x9e37_79b9_7f4a_7c15);
        let n = topo.num_nodes();
        let mut picked: Vec<usize> = Vec::new();
        let mut plan = FaultPlan::new();
        let span = window.end.saturating_sub(window.start).max(1);
        while picked.len() < count.min(n) {
            let i = rng.below(n);
            if picked.contains(&i) {
                continue;
            }
            picked.push(i);
            let at = window.start + rng.next_u64() % span;
            plan = plan.transient_node(at, NodeId(i as u32), repair_after);
        }
        plan
    }

    /// Converts every scripted action into its silent (no-oracle)
    /// counterpart: same cycles, same physical effects, but controllers
    /// get no `on_fault`/`on_repair` notification and must rely on the
    /// detection layer. Idempotent on already-silent actions.
    pub fn silenced(mut self) -> Self {
        for pa in &mut self.actions {
            pa.action = match pa.action {
                FaultAction::FailLink(n, p) => FaultAction::FailLinkSilent(n, p),
                FaultAction::RepairLink(n, p) => FaultAction::RepairLinkSilent(n, p),
                FaultAction::FailNode(n) => FaultAction::FailNodeSilent(n),
                FaultAction::RepairNode(n) => FaultAction::RepairNodeSilent(n),
                silent => silent,
            };
        }
        self
    }

    /// Merges another plan's remaining actions into this one.
    pub fn merge(mut self, other: FaultPlan) -> Self {
        for a in &other.actions[other.next..] {
            self.push(a.cycle, a.action);
        }
        self
    }

    /// Actions due at `cycle` (strictly: scheduled at or before it),
    /// advancing the script cursor past them.
    pub fn pop_due(&mut self, cycle: u64) -> &[PlannedAction] {
        let start = self.next;
        while self.next < self.actions.len() && self.actions[self.next].cycle <= cycle {
            self.next += 1;
        }
        &self.actions[start..self.next]
    }

    /// True once every scripted action has fired.
    pub fn exhausted(&self) -> bool {
        self.next >= self.actions.len()
    }

    /// All scripted actions, in firing order (diagnostics/reports).
    pub fn actions(&self) -> &[PlannedAction] {
        &self.actions
    }

    /// Cycle of the last scripted action (0 for an empty plan) — useful to
    /// size the run so the whole lifecycle is exercised.
    pub fn last_cycle(&self) -> u64 {
        self.actions.last().map_or(0, |a| a.cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftr_topo::Mesh2D;

    #[test]
    fn actions_fire_in_cycle_order() {
        let mut plan = FaultPlan::new().at(50, FaultAction::FailNode(NodeId(1))).transient_link(
            10,
            NodeId(0),
            PortId(0),
            25,
        );
        assert_eq!(plan.actions().len(), 3);
        assert!(plan.pop_due(5).is_empty());
        let due = plan.pop_due(10);
        assert_eq!(
            due,
            &[PlannedAction { cycle: 10, action: FaultAction::FailLink(NodeId(0), PortId(0)) }]
        );
        let due = plan.pop_due(60);
        assert_eq!(due.len(), 2, "repair at 35 and node fault at 50");
        assert_eq!(due[0].cycle, 35);
        assert_eq!(due[1].cycle, 50);
        assert!(plan.exhausted());
        assert_eq!(plan.last_cycle(), 50);
    }

    #[test]
    fn random_transient_links_deterministic_and_distinct() {
        let m = Mesh2D::new(6, 6);
        let a = FaultPlan::random_transient_links(&m, 8, 100..500, 200, 42);
        let b = FaultPlan::random_transient_links(&m, 8, 100..500, 200, 42);
        assert_eq!(a.actions(), b.actions(), "same seed, same plan");
        assert_eq!(a.actions().len(), 16, "8 faults + 8 repairs");
        let mut fails = Vec::new();
        for pa in a.actions() {
            match pa.action {
                FaultAction::FailLink(n, p) => {
                    assert!((100..500).contains(&pa.cycle));
                    assert!(!fails.contains(&(n, p)), "links are distinct");
                    fails.push((n, p));
                }
                FaultAction::RepairLink(n, p) => {
                    let fail = a
                        .actions()
                        .iter()
                        .find(|x| x.action == FaultAction::FailLink(n, p))
                        .expect("matching fail");
                    assert_eq!(pa.cycle, fail.cycle + 200);
                }
                _ => panic!("unexpected action"),
            }
        }
        let c = FaultPlan::random_transient_links(&m, 8, 100..500, 200, 43);
        assert_ne!(a.actions(), c.actions(), "different seed, different plan");
    }

    #[test]
    fn merge_keeps_order() {
        let a = FaultPlan::new().at(30, FaultAction::FailNode(NodeId(0)));
        let b = FaultPlan::new().at(10, FaultAction::FailNode(NodeId(1)));
        let mut m = a.merge(b);
        assert_eq!(m.pop_due(10)[0].action, FaultAction::FailNode(NodeId(1)));
    }
}
