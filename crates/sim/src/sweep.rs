//! Parallel parameter sweeps.
//!
//! Latency-throughput curves need one independent simulation per offered
//! load; sweeps fan the runs out over OS threads with `crossbeam::scope`
//! (each simulation is single-threaded and deterministic for its seed, so
//! results are reproducible regardless of scheduling).

use crossbeam::thread;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Best-effort rendering of a panic payload (panics carry `&str` or
/// `String` in practice; anything else gets a placeholder).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs `job` for every element of `inputs` in parallel (bounded by
/// `max_threads`) and returns the results in input order.
///
/// Each job runs under `catch_unwind`, so one panicking input no longer
/// aborts the whole scope with an anonymous "sweep worker panicked": every
/// remaining job still runs, and the collected failures are re-raised as a
/// single panic naming each failing input index and its payload — campaign
/// failures are attributable to the exact (parameter, seed) cell.
pub fn run_sweep<I, O, F>(inputs: Vec<I>, max_threads: usize, job: F) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = max_threads.max(1).min(n);
    // one lock per output slot: writers never contend with each other (each
    // index is claimed by exactly one worker), unlike a single global mutex
    // around the whole result vector which serialises every store
    let slots: Vec<parking_lot::Mutex<Option<std::thread::Result<O>>>> =
        (0..n).map(|_| parking_lot::Mutex::new(None)).collect();

    // hand out (index, input) pairs through a shared atomic cursor
    // (Relaxed is enough: fetch_add is an atomic RMW, so every index is
    // claimed exactly once, and the scope join publishes the slot writes)
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let inputs_ref = &inputs;
    let job_ref = &job;
    let slots_ref = &slots;

    thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| loop {
                let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = catch_unwind(AssertUnwindSafe(|| job_ref(&inputs_ref[i])));
                *slots_ref[i].lock() = Some(out);
            });
        }
    })
    .expect("sweep worker panicked outside a job");

    let mut outs = Vec::with_capacity(n);
    let mut failures: Vec<(usize, String)> = Vec::new();
    for (i, slot) in slots.into_iter().enumerate() {
        match slot.into_inner() {
            Some(Ok(o)) => outs.push(o),
            Some(Err(payload)) => failures.push((i, panic_message(payload.as_ref()))),
            None => failures.push((i, "slot never ran".to_string())),
        }
    }
    if !failures.is_empty() {
        let list: Vec<String> =
            failures.iter().map(|(i, m)| format!("input index {i}: {m}")).collect();
        panic!("sweep: {} of {n} jobs panicked — {}", failures.len(), list.join("; "));
    }
    outs
}

/// Default sweep parallelism: the machine's logical CPU count.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

/// Worker-thread count for sweeps and the sharded engine: the `FTR_THREADS`
/// environment variable when set to a positive integer, else
/// [`default_threads`]. Lets CI and shared machines pin parallelism without
/// touching every call site.
pub fn worker_count() -> usize {
    std::env::var("FTR_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(default_threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = run_sweep((0..100).collect(), 8, |&x: &i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_single_threaded() {
        let out = run_sweep(vec![1, 2, 3], 1, |&x: &i32| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = run_sweep(Vec::<i32>::new(), 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = run_sweep(vec![7], 64, |&x: &i32| x);
        assert_eq!(out, vec![7]);
    }

    #[test]
    #[should_panic(expected = "input index 7")]
    fn panicking_job_is_attributed_to_its_input_index() {
        run_sweep((0..16).collect(), 4, |&x: &i32| {
            if x == 7 {
                panic!("bad cell");
            }
            x
        });
    }

    #[test]
    fn panic_message_names_every_failure_and_payload() {
        let res = catch_unwind(AssertUnwindSafe(|| {
            run_sweep((0..8).collect(), 2, |&x: &i32| {
                if x % 4 == 1 {
                    panic!("seed {x} diverged");
                }
                x
            })
        }));
        let msg = panic_message(res.expect_err("must propagate").as_ref());
        assert!(msg.contains("2 of 8 jobs panicked"), "got: {msg}");
        assert!(msg.contains("input index 1: seed 1 diverged"), "got: {msg}");
        assert!(msg.contains("input index 5: seed 5 diverged"), "got: {msg}");
    }

    #[test]
    fn worker_count_respects_env_override() {
        // mutating the process environment is global: serialize through
        // the workspace-wide env lock, which also restores the pre-test
        // value of FTR_THREADS on drop (even on panic)
        let mut env = crate::envlock::EnvGuard::new();
        env.set("FTR_THREADS", "3");
        assert_eq!(worker_count(), 3);
        env.set("FTR_THREADS", " 5 ");
        assert_eq!(worker_count(), 5, "whitespace-tolerant");
        env.set("FTR_THREADS", "0");
        assert_eq!(worker_count(), default_threads(), "zero falls back");
        env.set("FTR_THREADS", "lots");
        assert_eq!(worker_count(), default_threads(), "garbage falls back");
        env.remove("FTR_THREADS");
        assert_eq!(worker_count(), default_threads());
    }

    #[test]
    fn surviving_jobs_still_run_when_one_panics() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let ran = AtomicUsize::new(0);
        let res = catch_unwind(AssertUnwindSafe(|| {
            run_sweep((0..32).collect(), 4, |&x: &i32| {
                ran.fetch_add(1, Ordering::Relaxed);
                if x == 0 {
                    panic!("early failure");
                }
                x
            })
        }));
        assert!(res.is_err());
        assert_eq!(ran.load(Ordering::Relaxed), 32, "a panic must not cancel the sweep");
    }
}
