//! Parallel parameter sweeps.
//!
//! Latency-throughput curves need one independent simulation per offered
//! load; sweeps fan the runs out over OS threads with `crossbeam::scope`
//! (each simulation is single-threaded and deterministic for its seed, so
//! results are reproducible regardless of scheduling).

use crossbeam::thread;

/// Runs `job` for every element of `inputs` in parallel (bounded by
/// `max_threads`) and returns the results in input order.
pub fn run_sweep<I, O, F>(inputs: Vec<I>, max_threads: usize, job: F) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = max_threads.max(1).min(n);
    // one lock per output slot: writers never contend with each other (each
    // index is claimed by exactly one worker), unlike a single global mutex
    // around the whole result vector which serialises every store
    let slots: Vec<parking_lot::Mutex<Option<O>>> =
        (0..n).map(|_| parking_lot::Mutex::new(None)).collect();

    // hand out (index, input) pairs through a shared atomic cursor
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let inputs_ref = &inputs;
    let job_ref = &job;
    let slots_ref = &slots;

    thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| loop {
                let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = job_ref(&inputs_ref[i]);
                *slots_ref[i].lock() = Some(out);
            });
        }
    })
    .expect("sweep worker panicked");

    slots.into_iter().map(|c| c.into_inner().expect("all slots filled")).collect()
}

/// Default sweep parallelism: the machine's logical CPU count.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = run_sweep((0..100).collect(), 8, |&x: &i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_single_threaded() {
        let out = run_sweep(vec![1, 2, 3], 1, |&x: &i32| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = run_sweep(Vec::<i32>::new(), 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = run_sweep(vec![7], 64, |&x: &i32| x);
        assert_eq!(out, vec![7]);
    }
}
