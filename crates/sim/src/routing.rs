//! The control-unit interface between the simulator and routing algorithms.
//!
//! Mirrors the paper's router architecture (Figure 3): the data path asks
//! the control unit (rule bases or a native implementation) where to send
//! each head flit; information units feed link state and load to the
//! control unit; the control unit exchanges small control messages with
//! adjacent nodes to propagate fault knowledge (the "wave like" state
//! propagation of NAFTA/ROUTE_C).

use crate::flit::Header;
use ftr_obs::EventKind;
use ftr_topo::{NodeId, PortId, Topology, VcId};

/// What the control unit can observe at its node when deciding — produced
/// by the router's information units each decision.
pub struct RouterView<'a> {
    /// This node.
    pub node: NodeId,
    /// Current cycle.
    pub cycle: u64,
    /// Per `[port][vc]`: output channel allocatable right now (VC idle and
    /// at least one credit).
    pub out_free: &'a [Vec<bool>],
    /// Per port: amount of data (flits) still assigned to this output —
    /// NAFTA's adaptivity criterion ("the amount of data that still has to
    /// pass a node").
    pub out_load: &'a [u32],
    /// Per port: the *local* link status (healthy link and live neighbour —
    /// assumption ii makes this locally observable).
    pub link_alive: &'a [bool],
}

impl RouterView<'_> {
    /// True if any VC of `port` is allocatable.
    pub fn any_vc_free(&self, port: PortId) -> bool {
        self.out_free[port.idx()].iter().any(|&b| b)
    }

    /// First allocatable VC of `port` within a VC range.
    pub fn free_vc_in(&self, port: PortId, vcs: std::ops::Range<usize>) -> Option<VcId> {
        self.out_free[port.idx()][vcs.clone()]
            .iter()
            .position(|&b| b)
            .map(|i| VcId((vcs.start + i) as u8))
    }
}

/// Routing verdict for a head flit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Forward through this output channel.
    Route(PortId, VcId),
    /// Deliver locally (destination reached).
    Deliver,
    /// No usable output right now (contention) — ask again next cycle.
    Wait,
    /// The algorithm cannot route this message at all (destination
    /// unreachable under its fault knowledge) — message is dropped and
    /// counted, which surfaces condition-3 violations (§2.1).
    Unroutable,
}

/// A routing decision plus its cost in rule-interpretation steps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Decision {
    /// The verdict.
    pub verdict: Verdict,
    /// Consecutive rule interpretations this decision needed — the §5
    /// overhead metric (NAFTA: 1 fault-free, up to 3 with faults;
    /// ROUTE_C: always 2).
    pub steps: u32,
}

impl Decision {
    /// Convenience constructor.
    pub fn new(verdict: Verdict, steps: u32) -> Self {
        Decision { verdict, steps }
    }
}

/// A control-plane message to an adjacent node (fault/state propagation).
#[derive(Clone, Debug, PartialEq)]
pub struct ControlMsg {
    /// Port to send through (must be alive).
    pub port: PortId,
    /// Algorithm-defined payload words.
    pub payload: Vec<i64>,
}

/// Per-node control unit instantiated by a [`RoutingAlgorithm`].
pub trait NodeController: Send {
    /// Routing decision for the head flit currently at the front of input
    /// `(in_port, in_vc)`; `in_port` is `None` for locally injected
    /// messages. May update the header (mark misrouted, switch virtual
    /// network, count hops).
    fn route(
        &mut self,
        view: &RouterView<'_>,
        header: &mut Header,
        in_port: Option<PortId>,
        in_vc: VcId,
    ) -> Decision;

    /// Periodic control-plane hook: invoked for every live node when the
    /// network's tick period elapses (see `NetworkBuilder::tick_period`;
    /// never invoked without one). Runs in ascending node order before the
    /// cycle's control deliveries, so controllers can drive autonomous
    /// protocols — heartbeat probing, timeout bookkeeping, suspicion
    /// escalation — without any oracle notification. Returns control
    /// messages to send this cycle. Default: no-op, which keeps
    /// oracle-notified algorithms unchanged.
    fn on_tick(&mut self, view: &RouterView<'_>, cycle: u64) -> Vec<ControlMsg> {
        let _ = (view, cycle);
        Vec::new()
    }

    /// Drains trace events the controller wants recorded (heartbeats,
    /// suspicions, alarms). The network calls this after each control-plane
    /// hook (`on_tick`/`on_control`/`on_fault`/`on_repair`) and stamps the
    /// events with the current cycle. Default: none.
    fn drain_events(&mut self) -> Vec<EventKind> {
        Vec::new()
    }

    /// A control message arrived from the neighbour behind `from`.
    /// Returns follow-up control messages (state propagation).
    fn on_control(
        &mut self,
        view: &RouterView<'_>,
        from: PortId,
        payload: &[i64],
    ) -> Vec<ControlMsg> {
        let _ = (view, from, payload);
        Vec::new()
    }

    /// The link behind `port` (or the neighbour node) was detected faulty.
    /// Returns control messages announcing the new state.
    fn on_fault(&mut self, view: &RouterView<'_>, port: PortId) -> Vec<ControlMsg> {
        let _ = (view, port);
        Vec::new()
    }

    /// The link behind `port` (or the neighbour node) was repaired and is
    /// usable again. Algorithms whose fault knowledge accumulates
    /// monotonically must un-learn here (typically by resetting derived
    /// state and starting a reconfiguration wave). Default: no-op, which is
    /// correct only for algorithms that keep no fault state.
    fn on_repair(&mut self, view: &RouterView<'_>, port: PortId) -> Vec<ControlMsg> {
        let _ = (view, port);
        Vec::new()
    }

    /// Diagnostic snapshot of the controller's fault knowledge (used by
    /// settling-time experiments); algorithm-defined encoding.
    fn state_word(&self) -> i64 {
        0
    }

    /// The *full routing relation* for a message: every output channel the
    /// algorithm might select in some load state. Used by the
    /// channel-dependency deadlock checker and the conditions-1..3
    /// experiments; the default derives a singleton from [`Self::route`]
    /// under an all-free view, which is correct only for oblivious
    /// algorithms — adaptive ones must override.
    fn relation(
        &mut self,
        view: &RouterView<'_>,
        header: &Header,
        in_port: Option<PortId>,
        in_vc: VcId,
    ) -> Vec<(PortId, VcId)> {
        let mut h = *header;
        match self.route(view, &mut h, in_port, in_vc).verdict {
            Verdict::Route(p, v) => vec![(p, v)],
            _ => Vec::new(),
        }
    }
}

/// A routing algorithm: a factory for per-node controllers.
pub trait RoutingAlgorithm: Send + Sync {
    /// Algorithm name for reports.
    fn name(&self) -> String;

    /// Number of virtual channels per physical link the algorithm needs
    /// (NAFTA: 2, ROUTE_C: 5 — the VC count is itself part of the
    /// fault-tolerance hardware cost, §5).
    fn num_vcs(&self) -> usize;

    /// Builds the controller for one node.
    fn controller(&self, topo: &dyn Topology, node: NodeId) -> Box<dyn NodeController>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_helpers() {
        let out_free = vec![vec![false, true], vec![false, false]];
        let out_load = vec![3, 0];
        let link_alive = vec![true, false];
        let v = RouterView {
            node: NodeId(0),
            cycle: 0,
            out_free: &out_free,
            out_load: &out_load,
            link_alive: &link_alive,
        };
        assert!(v.any_vc_free(PortId(0)));
        assert!(!v.any_vc_free(PortId(1)));
        assert_eq!(v.free_vc_in(PortId(0), 0..2), Some(VcId(1)));
        assert_eq!(v.free_vc_in(PortId(0), 0..1), None);
    }
}
