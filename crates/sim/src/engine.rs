//! The engine facade: one interface over every step backend.
//!
//! [`SimEngine`] is the object-safe surface drivers program against —
//! sweeps, fault campaigns, bench bins and trace tooling take a
//! `Box<dyn SimEngine>` and stay agnostic of how the cycles are computed.
//! [`crate::Network`] implements it for every configuration: the
//! sequential scan, the dense reference scan and the sharded parallel step
//! are all the same type behind [`crate::NetworkBuilder::threads`], and —
//! by the determinism argument of `DESIGN.md` §14 — all observably
//! identical, so swapping backends never changes results.
//!
//! ```
//! use ftr_sim::{NetworkBuilder, SimEngine, routing::*};
//! # use ftr_sim::flit::Header;
//! use ftr_topo::{Mesh2D, NodeId, PortId, Topology, VcId};
//! use std::sync::Arc;
//! # struct Stay;
//! # struct StayCtl;
//! # impl RoutingAlgorithm for Stay {
//! #     fn name(&self) -> String { "stay".into() }
//! #     fn num_vcs(&self) -> usize { 1 }
//! #     fn controller(&self, _t: &dyn Topology, _n: NodeId) -> Box<dyn NodeController> {
//! #         Box::new(StayCtl)
//! #     }
//! # }
//! # impl NodeController for StayCtl {
//! #     fn route(&mut self, _v: &RouterView<'_>, _h: &mut Header,
//! #              _ip: Option<PortId>, _iv: VcId) -> Decision {
//! #         Decision::new(Verdict::Wait, 1)
//! #     }
//! # }
//! let mut engine: Box<dyn SimEngine> = NetworkBuilder::new(Arc::new(Mesh2D::new(4, 4)))
//!     .threads(2)
//!     .build_engine(&Stay)
//!     .expect("valid configuration");
//! engine.run(10);
//! assert_eq!(engine.cycle(), 10);
//! assert_eq!(engine.threads(), 2);
//! ```

use crate::flit::MessageId;
use crate::network::{Network, RetryPolicy, SendError};
use crate::plan::FaultPlan;
use crate::stats::SimStats;
use ftr_obs::{MetricsRegistry, TraceSink};
use ftr_topo::{FaultSet, NodeId, PortId, Topology};
use std::sync::Arc;

/// Object-safe driver interface over a simulation backend.
///
/// Everything a campaign/sweep/bench driver needs to offer load, script
/// faults, advance time and read results — without naming the concrete
/// engine. Obtain one from [`crate::NetworkBuilder::build_engine`].
pub trait SimEngine: Send {
    /// Advances the simulation one cycle.
    fn step(&mut self);

    /// Runs `cycles` steps (stops early on deadlock).
    fn run(&mut self, cycles: u64);

    /// Runs until all in-flight messages terminate or `budget` cycles
    /// elapse; true if the network drained.
    fn drain(&mut self, budget: u64) -> bool;

    /// Runs only the control plane until it goes quiet; `None` if `budget`
    /// was exhausted first.
    fn settle_control(&mut self, budget: u64) -> Option<u64>;

    /// Injects a message at `src` for `dst`.
    fn send(&mut self, src: NodeId, dst: NodeId, len_flits: u32) -> Result<MessageId, SendError>;

    /// Current cycle.
    fn cycle(&self) -> u64;

    /// Aggregated statistics.
    fn stats(&self) -> &SimStats;

    /// Messages in flight (injected, not yet terminated).
    fn in_flight(&self) -> usize;

    /// Whether the most recent step moved any flit.
    fn last_step_moved(&self) -> bool;

    /// Marks subsequently injected messages as measured.
    fn set_measuring(&mut self, on: bool);

    /// Adds to the measured-cycles count used for throughput.
    fn add_measured_cycles(&mut self, c: u64);

    /// The topology.
    fn topo(&self) -> &dyn Topology;

    /// Ground-truth fault set.
    fn faults(&self) -> &FaultSet;

    /// Fails the link leaving `n` through `p`.
    fn inject_link_fault(&mut self, n: NodeId, p: PortId);

    /// Fails node `n`.
    fn inject_node_fault(&mut self, n: NodeId);

    /// Repairs the link leaving `n` through `p`.
    fn repair_link(&mut self, n: NodeId, p: PortId);

    /// Repairs node `n`.
    fn repair_node(&mut self, n: NodeId);

    /// Applies a whole static fault set (links then nodes).
    fn apply_fault_set(&mut self, fs: &FaultSet);

    /// Attaches (or replaces) a scripted fault plan mid-run.
    fn set_fault_plan(&mut self, plan: FaultPlan);

    /// Enables, replaces or (with `None`) disables source retransmission.
    fn set_retry_policy(&mut self, policy: Option<RetryPolicy>);

    /// The attached trace sink, if any.
    fn trace_sink(&self) -> Option<&Arc<dyn TraceSink>>;

    /// The attached metrics registry, if any.
    fn metrics_registry(&self) -> Option<&Arc<MetricsRegistry>>;

    /// Number of shards the step partitions the network into.
    fn threads(&self) -> usize;
}

impl SimEngine for Network {
    fn step(&mut self) {
        Network::step(self);
    }
    fn run(&mut self, cycles: u64) {
        Network::run(self, cycles);
    }
    fn drain(&mut self, budget: u64) -> bool {
        Network::drain(self, budget)
    }
    fn settle_control(&mut self, budget: u64) -> Option<u64> {
        Network::settle_control(self, budget)
    }
    fn send(&mut self, src: NodeId, dst: NodeId, len_flits: u32) -> Result<MessageId, SendError> {
        Network::send(self, src, dst, len_flits)
    }
    fn cycle(&self) -> u64 {
        Network::cycle(self)
    }
    fn stats(&self) -> &SimStats {
        &self.stats
    }
    fn in_flight(&self) -> usize {
        Network::in_flight(self)
    }
    fn last_step_moved(&self) -> bool {
        Network::last_step_moved(self)
    }
    fn set_measuring(&mut self, on: bool) {
        Network::set_measuring(self, on);
    }
    fn add_measured_cycles(&mut self, c: u64) {
        Network::add_measured_cycles(self, c);
    }
    fn topo(&self) -> &dyn Topology {
        Network::topo(self)
    }
    fn faults(&self) -> &FaultSet {
        Network::faults(self)
    }
    fn inject_link_fault(&mut self, n: NodeId, p: PortId) {
        Network::inject_link_fault(self, n, p);
    }
    fn inject_node_fault(&mut self, n: NodeId) {
        Network::inject_node_fault(self, n);
    }
    fn repair_link(&mut self, n: NodeId, p: PortId) {
        Network::repair_link(self, n, p);
    }
    fn repair_node(&mut self, n: NodeId) {
        Network::repair_node(self, n);
    }
    fn apply_fault_set(&mut self, fs: &FaultSet) {
        Network::apply_fault_set(self, fs);
    }
    fn set_fault_plan(&mut self, plan: FaultPlan) {
        Network::set_fault_plan(self, plan);
    }
    fn set_retry_policy(&mut self, policy: Option<RetryPolicy>) {
        Network::set_retry_policy(self, policy);
    }
    fn trace_sink(&self) -> Option<&Arc<dyn TraceSink>> {
        Network::trace_sink(self)
    }
    fn metrics_registry(&self) -> Option<&Arc<MetricsRegistry>> {
        Network::metrics_registry(self)
    }
    fn threads(&self) -> usize {
        Network::threads(self)
    }
}
