//! # ftr-sim — cycle-level wormhole network simulator
//!
//! The evaluation substrate for the flexible fault-tolerant router
//! (Döring et al., IPPS 1998). Implements the paper's network model:
//! wormhole switching with flits (§2.2), virtual channels by link
//! multiplexing, input-buffered routers with credit flow control, a
//! control unit consulted per head flit with *configurable decision
//! latency* (the \[DLO97\] routing-decision-time effect the paper builds on),
//! a control plane for neighbour fault/state propagation, and dynamic fault
//! injection with worm-kill semantics.
//!
//! Routing algorithms plug in through [`routing::RoutingAlgorithm`] /
//! [`routing::NodeController`] — natively implemented algorithms live in
//! `ftr-algos`, and the rule-based router of `ftr-core` drives the same
//! interface through compiled rule programs.
//!
//! ## Quick tour
//!
//! ```
//! use ftr_sim::{Network, SimConfig, routing::*, flit::Header};
//! use ftr_topo::{Mesh2D, NodeId, PortId, Topology, VcId};
//! use std::sync::Arc;
//!
//! /// Minimal XY dimension-order routing (deadlock-free on meshes).
//! struct Xy(Mesh2D);
//! struct XyCtl(Mesh2D);
//! impl RoutingAlgorithm for Xy {
//!     fn name(&self) -> String { "xy".into() }
//!     fn num_vcs(&self) -> usize { 1 }
//!     fn controller(&self, _t: &dyn Topology, _n: NodeId) -> Box<dyn NodeController> {
//!         Box::new(XyCtl(self.0.clone()))
//!     }
//! }
//! impl NodeController for XyCtl {
//!     fn route(&mut self, view: &RouterView<'_>, h: &mut Header,
//!              _ip: Option<PortId>, _iv: VcId) -> Decision {
//!         let (dx, dy) = self.0.offset(view.node, h.dst);
//!         let p = if dx > 0 { ftr_topo::EAST } else if dx < 0 { ftr_topo::WEST }
//!                 else if dy > 0 { ftr_topo::NORTH } else { ftr_topo::SOUTH };
//!         if view.out_free[p.idx()][0] {
//!             Decision::new(Verdict::Route(p, VcId(0)), 1)
//!         } else {
//!             Decision::new(Verdict::Wait, 1)
//!         }
//!     }
//! }
//!
//! let topo = Arc::new(Mesh2D::new(4, 4));
//! let mut net = Network::builder(topo.clone())
//!     .build(&Xy((*topo).clone()))
//!     .expect("valid configuration");
//! net.send(NodeId(0), NodeId(15), 4).expect("endpoints alive");
//! assert!(net.drain(1_000));
//! assert_eq!(net.stats.delivered_msgs, 1);
//! ```
//!
//! To observe *why* the numbers come out the way they do, attach a trace
//! sink and/or metrics registry via [`NetworkBuilder`] — see `ftr-obs`.

mod arena;
pub mod detect;
pub mod engine;
pub mod envlock;
pub mod fleet;
pub mod flit;
pub mod network;
pub mod plan;
pub mod router;
pub mod routing;
pub mod stats;
pub mod sweep;
pub mod traffic;

pub use detect::{Detector, DetectorConfig, DetectorController, WithDetection};
pub use engine::SimEngine;
pub use fleet::{run_fleet, FleetJob, FleetOutcome};
pub use flit::{Flit, FlitKind, Header, MessageId};
pub use network::{BuildError, Network, NetworkBuilder, RetryPolicy, SendError, SimConfig};
pub use plan::{FaultAction, FaultPlan, PlannedAction};
pub use routing::{ControlMsg, Decision, NodeController, RouterView, RoutingAlgorithm, Verdict};
pub use stats::{Accum, SimStats};
pub use sweep::{run_sweep, worker_count};
pub use traffic::{Pattern, TrafficSource};
