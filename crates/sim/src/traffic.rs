//! Synthetic traffic generation.
//!
//! Standard interconnection-network workloads: uniform random, transpose,
//! bit-complement, bit-reversal, hotspot and fixed permutations. Injection
//! is an open-loop Bernoulli process per node, parameterised in
//! flits/node/cycle so latency-throughput curves sweep one scalar.

use ftr_topo::{FaultSet, NodeId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Destination selection patterns.
#[derive(Clone, Debug)]
pub enum Pattern {
    /// Uniformly random alive destination ≠ source.
    Uniform,
    /// Mesh transpose: `(x, y) → (y, x)` (needs a square mesh side).
    Transpose {
        /// Mesh side length.
        side: u32,
    },
    /// Bit complement of the node index (`n` bits).
    BitComplement {
        /// Address width in bits.
        bits: u32,
    },
    /// Bit reversal of the node index (`n` bits).
    BitReverse {
        /// Address width in bits.
        bits: u32,
    },
    /// With probability `frac`, send to `target`; otherwise uniform.
    Hotspot {
        /// The hot node.
        target: NodeId,
        /// Fraction of traffic aimed at it.
        frac: f64,
    },
}

impl Pattern {
    /// Picks a destination for `src`, or `None` when the pattern maps the
    /// source to itself or to a faulty node (assumption iii: no messages to
    /// faulty destinations).
    pub fn dest(
        &self,
        src: NodeId,
        topo: &dyn Topology,
        faults: &FaultSet,
        rng: &mut StdRng,
    ) -> Option<NodeId> {
        let fixed = |d: NodeId| {
            (d != src && d.idx() < topo.num_nodes() && !faults.node_faulty(d)).then_some(d)
        };
        match self {
            Pattern::Uniform | Pattern::Hotspot { .. } => {
                if let Pattern::Hotspot { target, frac } = self {
                    if rng.gen_bool(*frac) {
                        return fixed(*target);
                    }
                }
                let n = topo.num_nodes();
                for _ in 0..64 {
                    let d = NodeId(rng.gen_range(0..n as u32));
                    if d != src && !faults.node_faulty(d) {
                        return Some(d);
                    }
                }
                // rejection sampling starves on a mostly-faulty network,
                // silently under-injecting offered load; fall back to an
                // exhaustive scan so every alive destination stays reachable
                let alive: Vec<NodeId> =
                    topo.nodes().filter(|&d| d != src && !faults.node_faulty(d)).collect();
                if alive.is_empty() {
                    None
                } else {
                    Some(alive[rng.gen_range(0..alive.len())])
                }
            }
            Pattern::Transpose { side } => {
                let (x, y) = (src.0 % side, src.0 / side);
                fixed(NodeId(x * side + y))
            }
            Pattern::BitComplement { bits } => {
                let mask = (1u32 << bits) - 1;
                fixed(NodeId(!src.0 & mask))
            }
            Pattern::BitReverse { bits } => {
                let mut v = 0u32;
                for i in 0..*bits {
                    if src.0 & (1 << i) != 0 {
                        v |= 1 << (bits - 1 - i);
                    }
                }
                fixed(NodeId(v))
            }
        }
    }
}

/// Open-loop Bernoulli traffic source.
pub struct TrafficSource {
    /// Destination pattern.
    pub pattern: Pattern,
    /// Offered load in flits/node/cycle.
    pub rate: f64,
    /// Message length in flits.
    pub msg_len: u32,
    rng: StdRng,
}

impl TrafficSource {
    /// Creates a source with a deterministic seed.
    pub fn new(pattern: Pattern, rate: f64, msg_len: u32, seed: u64) -> Self {
        TrafficSource { pattern, rate, msg_len, rng: StdRng::seed_from_u64(seed) }
    }

    /// Messages to inject this cycle: `(src, dst, len)` triples.
    pub fn tick(&mut self, topo: &dyn Topology, faults: &FaultSet) -> Vec<(NodeId, NodeId, u32)> {
        let p = (self.rate / self.msg_len.max(1) as f64).min(1.0);
        let mut out = Vec::new();
        for src in topo.nodes() {
            if faults.node_faulty(src) {
                continue;
            }
            if self.rng.gen_bool(p) {
                if let Some(dst) = self.pattern.dest(src, topo, faults, &mut self.rng) {
                    out.push((src, dst, self.msg_len));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftr_topo::{Hypercube, Mesh2D};

    #[test]
    fn uniform_avoids_self_and_faulty() {
        let m = Mesh2D::new(4, 4);
        let mut f = FaultSet::new();
        f.fail_node(NodeId(5));
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let d = Pattern::Uniform.dest(NodeId(3), &m, &f, &mut rng).unwrap();
            assert_ne!(d, NodeId(3));
            assert_ne!(d, NodeId(5));
        }
    }

    #[test]
    fn uniform_finds_last_alive_node_on_mostly_faulty_network() {
        // one alive destination among 64 nodes: rejection sampling (64
        // draws at 1/64 hit rate) misses it regularly; the scan never does
        let m = Mesh2D::new(8, 8);
        let mut f = FaultSet::new();
        for d in m.nodes() {
            if d != NodeId(3) && d != NodeId(60) {
                f.fail_node(d);
            }
        }
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(Pattern::Uniform.dest(NodeId(3), &m, &f, &mut rng), Some(NodeId(60)));
        }
        // no alive destination at all -> None, not a spin
        f.fail_node(NodeId(60));
        assert_eq!(Pattern::Uniform.dest(NodeId(3), &m, &f, &mut rng), None);
    }

    #[test]
    fn transpose_mapping() {
        let m = Mesh2D::new(4, 4);
        let f = FaultSet::new();
        let mut rng = StdRng::seed_from_u64(1);
        let p = Pattern::Transpose { side: 4 };
        // (1, 2) = node 9 → (2, 1) = node 6
        assert_eq!(p.dest(NodeId(9), &m, &f, &mut rng), Some(NodeId(6)));
        // diagonal maps to itself → None
        assert_eq!(p.dest(NodeId(5), &m, &f, &mut rng), None);
    }

    #[test]
    fn bit_patterns() {
        let h = Hypercube::new(4);
        let f = FaultSet::new();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            Pattern::BitComplement { bits: 4 }.dest(NodeId(0b0011), &h, &f, &mut rng),
            Some(NodeId(0b1100))
        );
        assert_eq!(
            Pattern::BitReverse { bits: 4 }.dest(NodeId(0b0001), &h, &f, &mut rng),
            Some(NodeId(0b1000))
        );
    }

    #[test]
    fn hotspot_bias() {
        let m = Mesh2D::new(4, 4);
        let f = FaultSet::new();
        let mut rng = StdRng::seed_from_u64(7);
        let p = Pattern::Hotspot { target: NodeId(0), frac: 0.9 };
        let hits =
            (0..1000).filter(|_| p.dest(NodeId(9), &m, &f, &mut rng) == Some(NodeId(0))).count();
        assert!(hits > 850, "hotspot hit only {hits}/1000");
    }

    #[test]
    fn source_rate_scales() {
        let m = Mesh2D::new(4, 4);
        let f = FaultSet::new();
        let mut src = TrafficSource::new(Pattern::Uniform, 0.32, 4, 3);
        let total: usize = (0..1000).map(|_| src.tick(&m, &f).len()).sum();
        // expected messages/cycle = 16 nodes * 0.32/4 = 1.28 → ~1280
        assert!((1000..1600).contains(&total), "got {total}");
    }
}
