//! Integration tests of the observability layer against a live
//! simulation: accounting invariants, trace-stream well-formedness, and
//! sweep determinism.

use ftr_obs::{EventKind, MetricsRegistry, RingSink};
use ftr_sim::flit::Header;
use ftr_sim::routing::{Decision, NodeController, RouterView, RoutingAlgorithm, Verdict};
use ftr_sim::{run_sweep, Network, Pattern, TrafficSource};
use ftr_topo::{Mesh2D, NodeId, PortId, Topology, VcId, EAST, NORTH, SOUTH, WEST};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Minimal XY router (same control algorithm as the prop tests).
struct Xy(Mesh2D);
struct XyCtl(Mesh2D);

impl RoutingAlgorithm for Xy {
    fn name(&self) -> String {
        "obs-xy".into()
    }
    fn num_vcs(&self) -> usize {
        1
    }
    fn controller(&self, _t: &dyn Topology, _n: NodeId) -> Box<dyn NodeController> {
        Box::new(XyCtl(self.0.clone()))
    }
}

impl NodeController for XyCtl {
    fn route(
        &mut self,
        view: &RouterView<'_>,
        h: &mut Header,
        _ip: Option<PortId>,
        _iv: VcId,
    ) -> Decision {
        let (dx, dy) = self.0.offset(view.node, h.dst);
        let p = if dx > 0 {
            EAST
        } else if dx < 0 {
            WEST
        } else if dy > 0 {
            NORTH
        } else if dy < 0 {
            SOUTH
        } else {
            return Decision::new(Verdict::Deliver, 1);
        };
        if !view.link_alive[p.idx()] {
            return Decision::new(Verdict::Unroutable, 1);
        }
        if view.out_free[p.idx()][0] {
            Decision::new(Verdict::Route(p, VcId(0)), 1)
        } else {
            Decision::new(Verdict::Wait, 1)
        }
    }
}

fn traced_run(seed: u64, cycles: u64, fault_at: Option<u64>) -> (Network, Arc<RingSink>) {
    let mesh = Mesh2D::new(5, 5);
    let sink = Arc::new(RingSink::new(1 << 20));
    let mut net = Network::builder(Arc::new(mesh.clone()))
        .trace(sink.clone())
        .build(&Xy(mesh.clone()))
        .expect("valid config");
    net.set_measuring(true); // hops/latency accums cover every message
    let mut tf = TrafficSource::new(Pattern::Uniform, 0.1, 4, seed);
    for c in 0..cycles {
        if Some(c) == fault_at {
            net.inject_link_fault(mesh.node_at(2, 2), EAST);
        }
        for (s, d, l) in tf.tick(&mesh, net.faults()) {
            net.send(s, d, l).unwrap();
        }
        net.step();
    }
    net.drain(50_000);
    (net, sink)
}

#[test]
fn stats_accounting_balances_throughout_a_faulty_run() {
    let mesh = Mesh2D::new(5, 5);
    let mut net =
        Network::builder(Arc::new(mesh.clone())).build(&Xy(mesh.clone())).expect("valid config");
    let mut tf = TrafficSource::new(Pattern::Uniform, 0.15, 4, 7);
    for c in 0..600u64 {
        if c == 200 {
            net.inject_link_fault(mesh.node_at(1, 1), EAST);
        }
        if c == 400 {
            net.inject_node_fault(mesh.node_at(3, 3));
        }
        for (s, d, l) in tf.tick(&mesh, net.faults()) {
            net.send(s, d, l).unwrap();
        }
        net.step();
        // the invariant holds on EVERY cycle, not just at quiescence
        assert!(net.stats.accounting_balanced(), "cycle {c}: {:?}", net.stats);
    }
    net.drain(50_000);
    assert!(net.stats.accounting_balanced());
    assert_eq!(net.in_flight(), 0);
    assert!(net.stats.killed_msgs + net.stats.unroutable_msgs > 0, "faults had casualties");
}

#[test]
fn trace_stream_is_cycle_monotone_and_causally_ordered() {
    let (net, sink) = traced_run(11, 800, Some(300));
    assert_eq!(sink.dropped(), 0, "ring sized for the full run");
    let events = sink.events();
    assert!(!events.is_empty());

    // cycle stamps never decrease
    assert!(events.windows(2).all(|w| w[0].cycle <= w[1].cycle), "trace is cycle-monotone");

    // per message: inject first, then decisions/stalls, then exactly one
    // terminal event (deliver / kill / unroutable)
    let mut injected_at: HashMap<u64, u64> = HashMap::new();
    let mut terminated: HashSet<u64> = HashSet::new();
    for ev in &events {
        match &ev.kind {
            EventKind::Inject { msg, .. } => {
                assert!(injected_at.insert(*msg, ev.cycle).is_none(), "msg {msg} double-inject");
            }
            EventKind::RouteDecision { msg, .. }
            | EventKind::VcStall { msg, .. }
            | EventKind::VcAcquire { msg, .. }
            | EventKind::VcRelease { msg, .. }
            | EventKind::RouteWait { msg, .. } => {
                assert!(injected_at.contains_key(msg), "decision before inject for {msg}");
                assert!(!terminated.contains(msg), "decision after termination for {msg}");
            }
            EventKind::Deliver { msg, .. }
            | EventKind::Kill { msg }
            | EventKind::Unroutable { msg } => {
                assert!(injected_at.contains_key(msg), "terminal before inject for {msg}");
                assert!(terminated.insert(*msg), "msg {msg} terminated twice");
            }
            _ => {}
        }
    }
    assert_eq!(injected_at.len() as u64, net.stats.injected_msgs);
    assert_eq!(terminated.len() as u64, net.stats.terminated());

    // the fault injection shows up exactly once
    let faults = events.iter().filter(|e| matches!(e.kind, EventKind::LinkFault { .. })).count();
    assert_eq!(faults, 1);
}

#[test]
fn channel_acquire_release_pairing_and_hop_counts() {
    // fault-free run: every delivered message must acquire and release the
    // same channels, one acquire per hop, in strict alternation per channel
    let (net, sink) = traced_run(31, 600, None);
    assert_eq!(sink.dropped(), 0);
    let mut held: HashMap<(u32, u8, u8), u64> = HashMap::new();
    let mut acquires: HashMap<u64, u64> = HashMap::new();
    let mut releases: HashMap<u64, u64> = HashMap::new();
    for ev in sink.events() {
        match ev.kind {
            EventKind::VcAcquire { node, msg, port, vc } => {
                let prev = held.insert((node.0, port.0, vc.0), msg);
                assert_eq!(prev, None, "channel acquired while owned (msg {msg})");
                *acquires.entry(msg).or_default() += 1;
            }
            EventKind::VcRelease { node, msg, port, vc } => {
                let owner = held.remove(&(node.0, port.0, vc.0));
                assert_eq!(owner, Some(msg), "release by non-owner (msg {msg})");
                *releases.entry(msg).or_default() += 1;
            }
            _ => {}
        }
    }
    assert!(held.is_empty(), "all channels released by the end of a fault-free run");
    assert_eq!(acquires, releases, "per-message acquire/release balance");
    // each acquire is one switch traversal, which is how hops are counted
    let total_acquires: u64 = acquires.values().sum();
    assert_eq!(net.stats.delivered_msgs, net.stats.injected_msgs, "fault-free run delivers all");
    assert_eq!(total_acquires, net.stats.hops.sum, "acquires == hop count");
}

#[test]
fn route_wait_events_carry_probed_wants() {
    // XY routing waits only when its single preferred channel is busy, so
    // every RouteWait must name exactly that one channel
    let mesh = Mesh2D::new(5, 5);
    let sink = Arc::new(RingSink::new(1 << 20));
    let mut net = Network::builder(Arc::new(mesh.clone()))
        .trace(sink.clone())
        .build(&Xy(mesh.clone()))
        .expect("valid config");
    // heavy uniform load forces contention and therefore Wait verdicts
    let mut tf = TrafficSource::new(Pattern::Uniform, 0.5, 8, 5);
    for _ in 0..400 {
        for (s, d, l) in tf.tick(&mesh, net.faults()) {
            net.send(s, d, l).unwrap();
        }
        net.step();
    }
    net.drain(50_000);
    assert_eq!(sink.dropped(), 0);
    let mut waits = 0u64;
    for ev in sink.events() {
        if let EventKind::RouteWait { wants, .. } = &ev.kind {
            waits += 1;
            assert_eq!(wants.len(), 1, "XY has exactly one acceptable channel while blocked");
        }
    }
    assert!(waits > 0, "load 0.5 must produce blocked cycles");
}

#[test]
fn trace_derived_steps_match_engine_stats() {
    let (net, sink) = traced_run(23, 600, None);
    assert_eq!(sink.dropped(), 0);
    let (mut count, mut sum) = (0u64, 0u64);
    for ev in sink.events() {
        if let EventKind::RouteDecision { steps, .. } = ev.kind {
            count += 1;
            sum += steps as u64;
        }
    }
    assert_eq!(count, net.stats.decision_steps.count);
    assert_eq!(sum, net.stats.decision_steps.sum);
}

#[test]
fn sweep_is_deterministic_across_thread_counts() {
    let loads: Vec<u64> = (0..12).collect();
    let job = |&seed: &u64| {
        let mesh = Mesh2D::new(4, 4);
        let registry = Arc::new(MetricsRegistry::new());
        let mut net = Network::builder(Arc::new(mesh.clone()))
            .metrics(registry.clone())
            .build(&Xy(mesh.clone()))
            .expect("valid config");
        let mut tf = TrafficSource::new(Pattern::Uniform, 0.12, 4, seed);
        net.set_measuring(true);
        for _ in 0..300 {
            for (s, d, l) in tf.tick(&mesh, net.faults()) {
                net.send(s, d, l).unwrap();
            }
            net.step();
        }
        net.drain(20_000);
        assert_eq!(
            registry.counter_value("sim.delivered"),
            Some(net.stats.delivered_msgs),
            "registry mirrors stats"
        );
        (net.stats.delivered_msgs, net.stats.latency.sum, net.stats.hops.sum)
    };
    let one = run_sweep(loads.clone(), 1, job);
    let four = run_sweep(loads.clone(), 4, job);
    let sixteen = run_sweep(loads.clone(), 16, job);
    assert_eq!(one, four, "1 vs 4 threads");
    assert_eq!(one, sixteen, "1 vs 16 threads");
    assert!(one.iter().all(|&(d, _, _)| d > 0), "every slot simulated traffic");
}
