//! End-to-end tests of the dynamic-fault lifecycle: scripted fault plans,
//! worm kills, link/node repair, source retransmission, and the rejected
//! injection path — with the accounting invariant checked on every cycle.

use ftr_sim::flit::Header;
use ftr_sim::plan::{FaultAction, FaultPlan};
use ftr_sim::routing::{Decision, NodeController, RouterView, RoutingAlgorithm, Verdict};
use ftr_sim::{Network, RetryPolicy, SendError, SimConfig};
use ftr_topo::{Mesh2D, NodeId, PortId, Topology, VcId, EAST, NORTH, SOUTH, WEST};
use std::sync::Arc;

/// XY dimension-order routing that declares a message unroutable when the
/// required link is dead (so transient faults terminate messages instead
/// of stalling them forever — exactly what the retry policy recovers).
struct Xy(Mesh2D);
struct XyCtl(Mesh2D);

impl RoutingAlgorithm for Xy {
    fn name(&self) -> String {
        "xy-lifecycle".into()
    }
    fn num_vcs(&self) -> usize {
        1
    }
    fn controller(&self, _t: &dyn Topology, _n: NodeId) -> Box<dyn NodeController> {
        Box::new(XyCtl(self.0.clone()))
    }
}

impl NodeController for XyCtl {
    fn route(
        &mut self,
        view: &RouterView<'_>,
        h: &mut Header,
        _ip: Option<PortId>,
        _iv: VcId,
    ) -> Decision {
        let (dx, dy) = self.0.offset(view.node, h.dst);
        let p = if dx > 0 {
            EAST
        } else if dx < 0 {
            WEST
        } else if dy > 0 {
            NORTH
        } else {
            SOUTH
        };
        if !view.link_alive[p.idx()] {
            return Decision::new(Verdict::Unroutable, 1);
        }
        if view.out_free[p.idx()][0] {
            Decision::new(Verdict::Route(p, VcId(0)), 1)
        } else {
            Decision::new(Verdict::Wait, 1)
        }
    }
}

fn mesh_net(side: u32) -> (Arc<Mesh2D>, Network) {
    let topo = Arc::new(Mesh2D::new(side, side));
    let net = Network::builder(topo.clone()).build(&Xy((*topo).clone())).expect("valid");
    (topo, net)
}

#[test]
fn send_to_faulty_endpoint_is_rejected_not_fatal() {
    let (topo, mut net) = mesh_net(4);
    net.inject_node_fault(topo.node_at(2, 2));
    assert_eq!(net.send(topo.node_at(2, 2), topo.node_at(0, 0), 4), Err(SendError::FaultySource));
    assert_eq!(
        net.send(topo.node_at(0, 0), topo.node_at(2, 2), 4),
        Err(SendError::FaultyDestination)
    );
    assert_eq!(net.stats.rejected_sends, 2);
    assert_eq!(net.stats.injected_msgs, 0, "rejected sends never enter the network");
    assert!(net.stats.accounting_balanced());
    // a healthy pair still works
    assert!(net.send(topo.node_at(0, 0), topo.node_at(1, 1), 4).is_ok());
    assert!(net.drain(1_000));
}

#[test]
fn fault_plan_drives_injections_and_repairs_from_step() {
    let (topo, mut net) = mesh_net(4);
    let n = topo.node_at(1, 1);
    let plan = FaultPlan::new()
        .transient_link(10, n, EAST, 40)
        .at(20, FaultAction::FailNode(topo.node_at(3, 3)))
        .at(35, FaultAction::RepairNode(topo.node_at(3, 3)));
    net.set_fault_plan(plan);

    net.run(5);
    assert!(!net.faults().link_faulty(topo.as_ref(), n, EAST));
    net.run(10); // cycle 15: link fault fired at 10
    assert!(net.faults().link_faulty(topo.as_ref(), n, EAST));
    assert!(!net.faults().node_faulty(topo.node_at(3, 3)));
    net.run(15); // cycle 30: node fault fired at 20
    assert!(net.faults().node_faulty(topo.node_at(3, 3)));
    net.run(10); // cycle 40: node repaired at 35
    assert!(!net.faults().node_faulty(topo.node_at(3, 3)));
    assert!(net.faults().link_faulty(topo.as_ref(), n, EAST), "link repairs at 50");
    net.run(15); // cycle 55: link repaired at 50
    assert!(!net.faults().link_faulty(topo.as_ref(), n, EAST));
    assert!(net.faults().faulty_links().next().is_none());
}

#[test]
fn transient_link_fault_round_trip_with_per_cycle_accounting() {
    let (topo, mut net) = mesh_net(4);
    let src = topo.node_at(0, 1);
    let dst = topo.node_at(3, 1);
    // fail the link mid-worm, repair it 50 cycles later
    net.set_fault_plan(FaultPlan::new().transient_link(8, topo.node_at(1, 1), EAST, 50));

    net.send(src, dst, 24).expect("alive endpoints"); // long worm across the row
    for _ in 0..12 {
        net.step();
        assert!(net.stats.accounting_balanced(), "cycle {}", net.cycle());
    }
    assert_eq!(net.stats.killed_msgs, 1, "worm spanning the failed link was ripped");
    assert_eq!(net.in_flight(), 0);

    // before the repair the same route is refused (unroutable at (1,1))
    net.send(src, dst, 4).expect("alive endpoints");
    while net.cycle() < 40 {
        net.step();
        assert!(net.stats.accounting_balanced(), "cycle {}", net.cycle());
    }
    assert_eq!(net.stats.unroutable_msgs, 1, "no route while the link is down");

    // after the repair (cycle 58) the flow resumes on the original path
    while net.cycle() < 60 {
        net.step();
    }
    net.send(src, dst, 4).expect("alive endpoints");
    assert!(net.drain(1_000));
    assert_eq!(net.stats.delivered_msgs, 1);
    assert!(net.stats.accounting_balanced());
    assert!(!net.stats.deadlock);
}

#[test]
fn retry_policy_recovers_what_the_baseline_loses() {
    // identical scenario, with and without source retransmission
    let run = |retry: Option<RetryPolicy>| {
        let topo = Arc::new(Mesh2D::new(4, 4));
        let mut b = Network::builder(topo.clone()).fault_plan(FaultPlan::new().transient_link(
            8,
            topo.node_at(1, 1),
            EAST,
            50,
        ));
        if let Some(rp) = retry {
            b = b.retry(rp);
        }
        let mut net = b.build(&Xy((*topo).clone())).expect("valid");
        net.set_measuring(true);
        net.send(topo.node_at(0, 1), topo.node_at(3, 1), 24).expect("alive");
        let drained = net.drain(2_000);
        for _ in 0..5 {
            net.step(); // a few extra cycles: drain() may return at in_flight 0
        }
        assert!(net.stats.accounting_balanced());
        (net.stats.clone(), drained)
    };

    let (no_retry, _) = run(None);
    assert_eq!(no_retry.delivered_msgs, 0, "baseline loses the ripped worm");
    assert_eq!(no_retry.killed_msgs, 1);
    assert!(no_retry.delivery_ratio() < 1.0);

    let (with_retry, drained) = run(Some(RetryPolicy { max_attempts: 6, backoff_cycles: 30 }));
    assert!(drained, "retrying run must terminate");
    assert_eq!(with_retry.delivered_msgs, 1, "retry delivers after the repair");
    assert_eq!(with_retry.killed_msgs + with_retry.unroutable_msgs, 0, "no terminal loss");
    assert_eq!(with_retry.abandoned_msgs, 0);
    assert!(with_retry.retried_msgs >= 1, "at least one re-injection");
    assert_eq!(with_retry.delivery_ratio(), 1.0, "delivery ratio recovers to 1.0");
    // latency is measured from the FIRST attempt's injection, so it must
    // span the outage: the link only comes back at cycle 58
    assert_eq!(with_retry.latency.count, 1);
    assert!(with_retry.latency.min >= 58, "latency {} spans the outage", with_retry.latency.min);
}

#[test]
fn retry_exhaustion_abandons_and_accounts() {
    let (topo, mut net) = mesh_net(4);
    net.set_retry_policy(Some(RetryPolicy { max_attempts: 3, backoff_cycles: 10 }));
    // permanent fault on the XY path: every attempt dies unroutable
    net.inject_link_fault(topo.node_at(1, 1), EAST);
    net.send(topo.node_at(0, 1), topo.node_at(3, 1), 4).expect("alive");
    assert!(net.drain(2_000), "exhaustion must terminate the message");
    assert_eq!(net.stats.retried_msgs, 2, "attempts 2 and 3 were re-injections");
    assert_eq!(net.stats.abandoned_msgs, 1);
    assert_eq!(net.stats.unroutable_msgs, 1, "terminal cause recorded");
    assert_eq!(net.stats.delivered_msgs, 0);
    assert!(net.stats.accounting_balanced());
}

#[test]
fn retry_to_dead_endpoint_is_abandoned_not_stuck() {
    let (topo, mut net) = mesh_net(4);
    net.set_retry_policy(Some(RetryPolicy { max_attempts: 10, backoff_cycles: 10 }));
    net.send(topo.node_at(0, 1), topo.node_at(3, 1), 24).expect("alive");
    net.run(6);
    // destination dies while the worm is in flight: kill + scheduled retry
    net.inject_node_fault(topo.node_at(3, 1));
    assert!(net.drain(1_000), "retry to a dead destination must not stall the drain");
    assert_eq!(net.stats.abandoned_msgs, 1);
    assert_eq!(net.stats.delivered_msgs, 0);
    assert!(net.stats.accounting_balanced());
}

#[test]
fn retry_backoff_longer_than_watchdog_is_not_a_deadlock() {
    let topo = Arc::new(Mesh2D::new(4, 4));
    let cfg = SimConfig { deadlock_threshold: 40, ..Default::default() };
    let mut net = Network::builder(topo.clone())
        .config(cfg)
        .retry(RetryPolicy { max_attempts: 4, backoff_cycles: 120 })
        .fault_plan(FaultPlan::new().transient_link(8, topo.node_at(1, 1), EAST, 60))
        .build(&Xy((*topo).clone()))
        .expect("valid");
    net.send(topo.node_at(0, 1), topo.node_at(3, 1), 24).expect("alive");
    assert!(net.drain(2_000));
    assert!(!net.stats.deadlock, "idle backoff must not trip the watchdog");
    assert_eq!(net.stats.delivered_msgs, 1);
    assert!(net.stats.accounting_balanced());
}
