//! End-to-end tests of the dynamic-fault lifecycle: scripted fault plans,
//! worm kills, link/node repair, source retransmission, and the rejected
//! injection path — with the accounting invariant checked on every cycle.

use ftr_obs::{EventKind, RingSink};
use ftr_sim::detect::{DetectorConfig, WithDetection};
use ftr_sim::flit::Header;
use ftr_sim::plan::{FaultAction, FaultPlan};
use ftr_sim::routing::{
    ControlMsg, Decision, NodeController, RouterView, RoutingAlgorithm, Verdict,
};
use ftr_sim::{Network, RetryPolicy, SendError, SimConfig};
use ftr_topo::{Mesh2D, NodeId, PortId, Topology, VcId, EAST, NORTH, SOUTH, WEST};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// XY dimension-order routing that declares a message unroutable when the
/// required link is dead (so transient faults terminate messages instead
/// of stalling them forever — exactly what the retry policy recovers).
struct Xy(Mesh2D);
struct XyCtl(Mesh2D);

impl RoutingAlgorithm for Xy {
    fn name(&self) -> String {
        "xy-lifecycle".into()
    }
    fn num_vcs(&self) -> usize {
        1
    }
    fn controller(&self, _t: &dyn Topology, _n: NodeId) -> Box<dyn NodeController> {
        Box::new(XyCtl(self.0.clone()))
    }
}

impl NodeController for XyCtl {
    fn route(
        &mut self,
        view: &RouterView<'_>,
        h: &mut Header,
        _ip: Option<PortId>,
        _iv: VcId,
    ) -> Decision {
        let (dx, dy) = self.0.offset(view.node, h.dst);
        let p = if dx > 0 {
            EAST
        } else if dx < 0 {
            WEST
        } else if dy > 0 {
            NORTH
        } else {
            SOUTH
        };
        if !view.link_alive[p.idx()] {
            return Decision::new(Verdict::Unroutable, 1);
        }
        if view.out_free[p.idx()][0] {
            Decision::new(Verdict::Route(p, VcId(0)), 1)
        } else {
            Decision::new(Verdict::Wait, 1)
        }
    }
}

fn mesh_net(side: u32) -> (Arc<Mesh2D>, Network) {
    let topo = Arc::new(Mesh2D::new(side, side));
    let net = Network::builder(topo.clone()).build(&Xy((*topo).clone())).expect("valid");
    (topo, net)
}

#[test]
fn send_to_faulty_endpoint_is_rejected_not_fatal() {
    let (topo, mut net) = mesh_net(4);
    net.inject_node_fault(topo.node_at(2, 2));
    assert_eq!(net.send(topo.node_at(2, 2), topo.node_at(0, 0), 4), Err(SendError::FaultySource));
    assert_eq!(
        net.send(topo.node_at(0, 0), topo.node_at(2, 2), 4),
        Err(SendError::FaultyDestination)
    );
    assert_eq!(net.stats.rejected_sends, 2);
    assert_eq!(net.stats.injected_msgs, 0, "rejected sends never enter the network");
    assert!(net.stats.accounting_balanced());
    // a healthy pair still works
    assert!(net.send(topo.node_at(0, 0), topo.node_at(1, 1), 4).is_ok());
    assert!(net.drain(1_000));
}

#[test]
fn fault_plan_drives_injections_and_repairs_from_step() {
    let (topo, mut net) = mesh_net(4);
    let n = topo.node_at(1, 1);
    let plan = FaultPlan::new()
        .transient_link(10, n, EAST, 40)
        .at(20, FaultAction::FailNode(topo.node_at(3, 3)))
        .at(35, FaultAction::RepairNode(topo.node_at(3, 3)));
    net.set_fault_plan(plan);

    net.run(5);
    assert!(!net.faults().link_faulty(topo.as_ref(), n, EAST));
    net.run(10); // cycle 15: link fault fired at 10
    assert!(net.faults().link_faulty(topo.as_ref(), n, EAST));
    assert!(!net.faults().node_faulty(topo.node_at(3, 3)));
    net.run(15); // cycle 30: node fault fired at 20
    assert!(net.faults().node_faulty(topo.node_at(3, 3)));
    net.run(10); // cycle 40: node repaired at 35
    assert!(!net.faults().node_faulty(topo.node_at(3, 3)));
    assert!(net.faults().link_faulty(topo.as_ref(), n, EAST), "link repairs at 50");
    net.run(15); // cycle 55: link repaired at 50
    assert!(!net.faults().link_faulty(topo.as_ref(), n, EAST));
    assert!(net.faults().faulty_links().next().is_none());
}

#[test]
fn transient_link_fault_round_trip_with_per_cycle_accounting() {
    let (topo, mut net) = mesh_net(4);
    let src = topo.node_at(0, 1);
    let dst = topo.node_at(3, 1);
    // fail the link mid-worm, repair it 50 cycles later
    net.set_fault_plan(FaultPlan::new().transient_link(8, topo.node_at(1, 1), EAST, 50));

    net.send(src, dst, 24).expect("alive endpoints"); // long worm across the row
    for _ in 0..12 {
        net.step();
        assert!(net.stats.accounting_balanced(), "cycle {}", net.cycle());
    }
    assert_eq!(net.stats.killed_msgs, 1, "worm spanning the failed link was ripped");
    assert_eq!(net.in_flight(), 0);

    // before the repair the same route is refused (unroutable at (1,1))
    net.send(src, dst, 4).expect("alive endpoints");
    while net.cycle() < 40 {
        net.step();
        assert!(net.stats.accounting_balanced(), "cycle {}", net.cycle());
    }
    assert_eq!(net.stats.unroutable_msgs, 1, "no route while the link is down");

    // after the repair (cycle 58) the flow resumes on the original path
    while net.cycle() < 60 {
        net.step();
    }
    net.send(src, dst, 4).expect("alive endpoints");
    assert!(net.drain(1_000));
    assert_eq!(net.stats.delivered_msgs, 1);
    assert!(net.stats.accounting_balanced());
    assert!(!net.stats.deadlock);
}

#[test]
fn retry_policy_recovers_what_the_baseline_loses() {
    // identical scenario, with and without source retransmission
    let run = |retry: Option<RetryPolicy>| {
        let topo = Arc::new(Mesh2D::new(4, 4));
        let mut b = Network::builder(topo.clone()).fault_plan(FaultPlan::new().transient_link(
            8,
            topo.node_at(1, 1),
            EAST,
            50,
        ));
        if let Some(rp) = retry {
            b = b.retry(rp);
        }
        let mut net = b.build(&Xy((*topo).clone())).expect("valid");
        net.set_measuring(true);
        net.send(topo.node_at(0, 1), topo.node_at(3, 1), 24).expect("alive");
        let drained = net.drain(2_000);
        for _ in 0..5 {
            net.step(); // a few extra cycles: drain() may return at in_flight 0
        }
        assert!(net.stats.accounting_balanced());
        (net.stats.clone(), drained)
    };

    let (no_retry, _) = run(None);
    assert_eq!(no_retry.delivered_msgs, 0, "baseline loses the ripped worm");
    assert_eq!(no_retry.killed_msgs, 1);
    assert!(no_retry.delivery_ratio() < 1.0);

    let (with_retry, drained) = run(Some(RetryPolicy { max_attempts: 6, backoff_cycles: 30 }));
    assert!(drained, "retrying run must terminate");
    assert_eq!(with_retry.delivered_msgs, 1, "retry delivers after the repair");
    assert_eq!(with_retry.killed_msgs + with_retry.unroutable_msgs, 0, "no terminal loss");
    assert_eq!(with_retry.abandoned_msgs, 0);
    assert!(with_retry.retried_msgs >= 1, "at least one re-injection");
    assert_eq!(with_retry.delivery_ratio(), 1.0, "delivery ratio recovers to 1.0");
    // latency is measured from the FIRST attempt's injection, so it must
    // span the outage: the link only comes back at cycle 58
    assert_eq!(with_retry.latency.count, 1);
    assert!(with_retry.latency.min >= 58, "latency {} spans the outage", with_retry.latency.min);
}

#[test]
fn retry_exhaustion_abandons_and_accounts() {
    let (topo, mut net) = mesh_net(4);
    net.set_retry_policy(Some(RetryPolicy { max_attempts: 3, backoff_cycles: 10 }));
    // permanent fault on the XY path: every attempt dies unroutable
    net.inject_link_fault(topo.node_at(1, 1), EAST);
    net.send(topo.node_at(0, 1), topo.node_at(3, 1), 4).expect("alive");
    assert!(net.drain(2_000), "exhaustion must terminate the message");
    assert_eq!(net.stats.retried_msgs, 2, "attempts 2 and 3 were re-injections");
    assert_eq!(net.stats.abandoned_msgs, 1);
    assert_eq!(net.stats.unroutable_msgs, 1, "terminal cause recorded");
    assert_eq!(net.stats.delivered_msgs, 0);
    assert!(net.stats.accounting_balanced());
}

#[test]
fn retry_to_dead_endpoint_is_abandoned_not_stuck() {
    let (topo, mut net) = mesh_net(4);
    net.set_retry_policy(Some(RetryPolicy { max_attempts: 10, backoff_cycles: 10 }));
    net.send(topo.node_at(0, 1), topo.node_at(3, 1), 24).expect("alive");
    net.run(6);
    // destination dies while the worm is in flight: kill + scheduled retry
    net.inject_node_fault(topo.node_at(3, 1));
    assert!(net.drain(1_000), "retry to a dead destination must not stall the drain");
    assert_eq!(net.stats.abandoned_msgs, 1);
    assert_eq!(net.stats.delivered_msgs, 0);
    assert!(net.stats.accounting_balanced());
}

/// Algorithm whose controller at `speaker` emits one control message
/// through `port` when `on_tick` runs at cycle `at`; every controller
/// counts the non-detector control payloads it receives.
struct SpeakOnce {
    speaker: NodeId,
    port: PortId,
    at: u64,
    received: Arc<AtomicU64>,
}

struct SpeakCtl {
    speak: Option<(PortId, u64)>,
    received: Arc<AtomicU64>,
}

impl RoutingAlgorithm for SpeakOnce {
    fn name(&self) -> String {
        "speak-once".into()
    }
    fn num_vcs(&self) -> usize {
        1
    }
    fn controller(&self, _t: &dyn Topology, n: NodeId) -> Box<dyn NodeController> {
        Box::new(SpeakCtl {
            speak: (n == self.speaker).then_some((self.port, self.at)),
            received: self.received.clone(),
        })
    }
}

impl NodeController for SpeakCtl {
    fn route(
        &mut self,
        _view: &RouterView<'_>,
        _h: &mut Header,
        _ip: Option<PortId>,
        _iv: VcId,
    ) -> Decision {
        Decision::new(Verdict::Wait, 1)
    }
    fn on_tick(&mut self, _view: &RouterView<'_>, cycle: u64) -> Vec<ControlMsg> {
        match self.speak {
            Some((port, at)) if at == cycle => vec![ControlMsg { port, payload: vec![99] }],
            _ => Vec::new(),
        }
    }
    fn on_control(
        &mut self,
        _view: &RouterView<'_>,
        _from: PortId,
        _payload: &[i64],
    ) -> Vec<ControlMsg> {
        self.received.fetch_add(1, Ordering::SeqCst);
        Vec::new()
    }
}

/// One `SpeakOnce` run: a control message leaves `(1,1)` eastwards at
/// cycle 5, an optional plan perturbs the network, and the receipt
/// count plus control-plane stats come back.
fn speak_run(plan: Option<FaultPlan>) -> (u64, ftr_sim::SimStats) {
    let topo = Arc::new(Mesh2D::new(4, 4));
    let received = Arc::new(AtomicU64::new(0));
    let algo =
        SpeakOnce { speaker: topo.node_at(1, 1), port: EAST, at: 5, received: received.clone() };
    let mut b = Network::builder(topo.clone()).tick_period(1);
    if let Some(p) = plan {
        b = b.fault_plan(p);
    }
    let mut net = b.build(&algo).expect("valid");
    net.run(10);
    (received.load(Ordering::SeqCst), net.stats.clone())
}

#[test]
fn control_delivery_crosses_healthy_link() {
    let (received, stats) = speak_run(None);
    assert_eq!(received, 1, "the message lands one cycle after the send");
    assert_eq!(stats.control_msgs, 1);
    assert_eq!(stats.control_dropped, 0);
}

#[test]
fn control_delivery_dropped_when_link_dies_between_send_and_delivery() {
    // sent at cycle 5 (due at 6); the link dies at the start of cycle 6,
    // before the delivery executes — the words never arrived
    let topo = Mesh2D::new(4, 4);
    let plan = FaultPlan::new().at(6, FaultAction::FailLink(topo.node_at(1, 1), EAST));
    let (received, stats) = speak_run(Some(plan));
    assert_eq!(received, 0, "a delivery must not cross a link that died in flight");
    assert_eq!(stats.control_msgs, 1, "the send itself happened");
    assert_eq!(stats.control_dropped, 1, "the in-flight loss is accounted");
}

#[test]
fn control_delivery_dropped_when_sender_dies_between_send_and_delivery() {
    let topo = Mesh2D::new(4, 4);
    let plan = FaultPlan::new().at(6, FaultAction::FailNode(topo.node_at(1, 1)));
    let (received, stats) = speak_run(Some(plan));
    assert_eq!(received, 0, "a dead sender's words never arrive");
    assert_eq!(stats.control_dropped, 1);
}

#[test]
fn control_send_on_dead_link_is_counted_not_silent() {
    // the link is already dead when the controller speaks at cycle 5
    let topo = Mesh2D::new(4, 4);
    let plan = FaultPlan::new().at(2, FaultAction::FailLink(topo.node_at(1, 1), EAST));
    let (received, stats) = speak_run(Some(plan));
    assert_eq!(received, 0);
    assert_eq!(stats.control_msgs, 0, "the message never entered the control plane");
    assert_eq!(stats.control_dropped, 1, "the send-time discard is accounted");
}

#[test]
fn silent_fault_keeps_physical_effect_but_skips_notification() {
    // two identical runs, one oracle-notified, one silent: same worm
    // kill, but the silent run produces no control traffic at all
    let run = |silent: bool| {
        let topo = Arc::new(Mesh2D::new(4, 4));
        let n = topo.node_at(1, 1);
        let mut net = Network::builder(topo.clone()).build(&Xy((*topo).clone())).expect("valid");
        net.send(topo.node_at(0, 1), topo.node_at(3, 1), 24).expect("alive");
        net.run(6);
        if silent {
            net.inject_link_fault_silent(n, EAST);
        } else {
            net.inject_link_fault(n, EAST);
        }
        net.run(4);
        assert!(net.faults().link_faulty(topo.as_ref(), n, EAST));
        assert_eq!(net.stats.killed_msgs, 1, "the worm rip is physical, not advisory");
        assert!(net.stats.accounting_balanced());
        net.stats.clone()
    };
    let oracle = run(false);
    let silent = run(true);
    assert_eq!(oracle.killed_msgs, silent.killed_msgs);
    assert_eq!(silent.control_msgs, 0, "no notification, no control wave");
}

#[test]
fn silenced_plan_mirrors_actions_cycle_for_cycle() {
    let topo = Mesh2D::new(4, 4);
    let loud = FaultPlan::new().transient_link(10, topo.node_at(1, 1), EAST, 40).transient_node(
        20,
        topo.node_at(3, 3),
        15,
    );
    let silent = loud.clone().silenced();
    assert_eq!(loud.actions().len(), silent.actions().len());
    for (l, s) in loud.actions().iter().zip(silent.actions()) {
        assert_eq!(l.cycle, s.cycle);
        let expected = match l.action {
            FaultAction::FailLink(n, p) => FaultAction::FailLinkSilent(n, p),
            FaultAction::RepairLink(n, p) => FaultAction::RepairLinkSilent(n, p),
            FaultAction::FailNode(n) => FaultAction::FailNodeSilent(n),
            FaultAction::RepairNode(n) => FaultAction::RepairNodeSilent(n),
            other => other,
        };
        assert_eq!(s.action, expected);
    }
    // idempotent
    assert_eq!(silent.clone().silenced().actions(), silent.actions());
}

/// Detection end-to-end over a protocol-agnostic wrapped algorithm: a
/// silent link fault must surface as Suspect events escalating into
/// Alarms at both endpoints, and the silent repair must surface as
/// resumed heartbeats (no new alarms after recovery).
#[test]
fn detector_turns_silent_fault_into_alarms_and_unsuspects_after_repair() {
    let topo = Arc::new(Mesh2D::new(4, 4));
    let n = topo.node_at(1, 1);
    let m = topo.node_at(2, 1);
    let sink = Arc::new(RingSink::new(100_000));
    let plan = FaultPlan::new().transient_link(20, n, EAST, 60).silenced();
    let algo = WithDetection::new(Xy((*topo).clone()), DetectorConfig { miss_threshold: 3 });
    let mut net = Network::builder(topo.clone())
        .tick_period(4)
        .trace(sink.clone())
        .fault_plan(plan)
        .build(&algo)
        .expect("valid");
    net.run(60); // fault at 20, alarm by ~20 + 4*(3+1)
    let alarms: Vec<(NodeId, PortId)> = sink
        .events()
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Alarm { node, port } => Some((node, port)),
            _ => None,
        })
        .collect();
    assert!(alarms.contains(&(n, EAST)), "near endpoint alarms: {alarms:?}");
    assert!(alarms.contains(&(m, WEST)), "far endpoint alarms too: {alarms:?}");
    assert_eq!(alarms.len(), 2, "no false positives anywhere else");
    let suspects =
        sink.events().iter().filter(|e| matches!(e.kind, EventKind::Suspect { .. })).count();
    assert!(suspects >= 2, "suspicion precedes each alarm");
    assert!(net.stats.control_dropped > 0, "probes into the dead link are accounted");

    // silent repair at cycle 80: pongs resume, detectors un-suspect, and
    // no further alarms fire
    net.run(60);
    let after: Vec<EventKind> = sink
        .events()
        .into_iter()
        .filter(|e| e.cycle > 90)
        .map(|e| e.kind)
        .filter(|k| matches!(k, EventKind::Alarm { .. } | EventKind::Suspect { .. }))
        .collect();
    assert!(after.is_empty(), "recovered link must be quiet: {after:?}");
}

/// A fault-free detection run must never suspect anyone — the zero
/// false-positive guarantee E22 quantifies.
#[test]
fn detector_is_silent_on_fault_free_network() {
    let topo = Arc::new(Mesh2D::new(4, 4));
    let sink = Arc::new(RingSink::new(100_000));
    let algo = WithDetection::new(Xy((*topo).clone()), DetectorConfig::default());
    let mut net = Network::builder(topo.clone())
        .tick_period(4)
        .trace(sink.clone())
        .build(&algo)
        .expect("valid");
    net.run(200);
    assert!(
        !sink
            .events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::Suspect { .. } | EventKind::Alarm { .. })),
        "no suspicion without faults"
    );
    assert_eq!(net.stats.control_dropped, 0);
    assert!(net.stats.control_msgs > 0, "heartbeats flowed");
    let heartbeats =
        sink.events().iter().filter(|e| matches!(e.kind, EventKind::Heartbeat { .. })).count();
    assert!(heartbeats > 0, "heartbeat traffic is traced");
}

#[test]
fn retry_backoff_longer_than_watchdog_is_not_a_deadlock() {
    let topo = Arc::new(Mesh2D::new(4, 4));
    let cfg = SimConfig { deadlock_threshold: 40, ..Default::default() };
    let mut net = Network::builder(topo.clone())
        .config(cfg)
        .retry(RetryPolicy { max_attempts: 4, backoff_cycles: 120 })
        .fault_plan(FaultPlan::new().transient_link(8, topo.node_at(1, 1), EAST, 60))
        .build(&Xy((*topo).clone()))
        .expect("valid");
    net.send(topo.node_at(0, 1), topo.node_at(3, 1), 24).expect("alive");
    assert!(net.drain(2_000));
    assert!(!net.stats.deadlock, "idle backoff must not trip the watchdog");
    assert_eq!(net.stats.delivered_msgs, 1);
    assert!(net.stats.accounting_balanced());
}
