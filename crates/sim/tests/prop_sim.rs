//! Property-based tests of the simulator engine: conservation, delivery
//! and timing invariants under randomized workloads.

use ftr_sim::flit::Header;
use ftr_sim::routing::{Decision, NodeController, RouterView, RoutingAlgorithm, Verdict};
use ftr_sim::{FaultAction, FaultPlan, Network, Pattern, RetryPolicy, SimConfig, TrafficSource};
use ftr_topo::{Mesh2D, NodeId, PortId, Topology, VcId, EAST, NORTH, SOUTH, WEST};
use proptest::prelude::*;
use std::sync::Arc;

/// Minimal XY router used as the known-good control algorithm.
struct Xy(Mesh2D);
struct XyCtl(Mesh2D);

impl RoutingAlgorithm for Xy {
    fn name(&self) -> String {
        "prop-xy".into()
    }
    fn num_vcs(&self) -> usize {
        1
    }
    fn controller(&self, _t: &dyn Topology, _n: NodeId) -> Box<dyn NodeController> {
        Box::new(XyCtl(self.0.clone()))
    }
}

impl NodeController for XyCtl {
    fn route(
        &mut self,
        view: &RouterView<'_>,
        h: &mut Header,
        _ip: Option<PortId>,
        _iv: VcId,
    ) -> Decision {
        let (dx, dy) = self.0.offset(view.node, h.dst);
        let p = if dx > 0 {
            EAST
        } else if dx < 0 {
            WEST
        } else if dy > 0 {
            NORTH
        } else if dy < 0 {
            SOUTH
        } else {
            return Decision::new(Verdict::Deliver, 1);
        };
        if !view.link_alive[p.idx()] {
            // oblivious: a dead link on the fixed path is fatal
            return Decision::new(Verdict::Unroutable, 1);
        }
        if view.out_free[p.idx()][0] {
            Decision::new(Verdict::Route(p, VcId(0)), 1)
        } else {
            Decision::new(Verdict::Wait, 1)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation: after draining, every injected message is accounted
    /// for exactly once (delivered + killed + unroutable), and the network
    /// holds no flits.
    #[test]
    fn message_conservation(
        seed in 0u64..1000,
        rate in 0.01f64..0.3,
        len in 1u32..8,
        cycles in 50u64..500,
    ) {
        let mesh = Mesh2D::new(4, 4);
        let mut net = Network::builder(Arc::new(mesh.clone())).build(&Xy(mesh.clone())).expect("valid config");
        let mut tf = TrafficSource::new(Pattern::Uniform, rate, len, seed);
        for _ in 0..cycles {
            for (s, d, l) in tf.tick(&mesh, net.faults()) {
                net.send(s, d, l).unwrap();
            }
            net.step();
        }
        prop_assert!(net.drain(100_000));
        let s = &net.stats;
        prop_assert_eq!(
            s.injected_msgs,
            s.delivered_msgs + s.killed_msgs + s.unroutable_msgs
        );
        prop_assert_eq!(s.killed_msgs, 0, "no faults, no kills");
        prop_assert_eq!(net.in_flight(), 0);
    }

    /// Latency lower bound: a message can never be delivered faster than
    /// hops + serialization (len - 1) cycles.
    #[test]
    fn latency_lower_bound(seed in 0u64..1000, len in 1u32..6) {
        let mesh = Mesh2D::new(5, 5);
        let mut net = Network::builder(Arc::new(mesh.clone())).build(&Xy(mesh.clone())).expect("valid config");
        net.set_measuring(true);
        let src = NodeId(seed as u32 % 25);
        let dst = NodeId((seed as u32 + 7) % 25);
        prop_assume!(src != dst);
        net.send(src, dst, len).unwrap();
        prop_assert!(net.drain(10_000));
        let hops = mesh.min_distance(src, dst) as u64;
        prop_assert!(
            net.stats.latency.min >= hops + len as u64 - 1,
            "latency {} < {} hops + {} flits",
            net.stats.latency.min, hops, len
        );
        prop_assert_eq!(net.stats.hops.max, hops, "XY is minimal");
    }

    /// Dynamic faults never wedge the engine: whatever is ripped is
    /// counted, the rest drains (XY marks blocked messages unroutable).
    #[test]
    fn dynamic_faults_keep_engine_consistent(
        seed in 0u64..500,
        fault_cycle in 10u64..200,
        fx in 0u32..4, fy in 0u32..4,
        dir in 0u8..4,
    ) {
        let mesh = Mesh2D::new(4, 4);
        let mut net = Network::builder(Arc::new(mesh.clone())).build(&Xy(mesh.clone())).expect("valid config");
        let mut tf = TrafficSource::new(Pattern::Uniform, 0.15, 4, seed);
        for c in 0..400u64 {
            if c == fault_cycle {
                net.inject_link_fault(mesh.node_at(fx, fy), PortId(dir));
            }
            for (s, d, l) in tf.tick(&mesh, net.faults()) {
                net.send(s, d, l).unwrap();
            }
            net.step();
        }
        net.drain(100_000);
        let s = &net.stats;
        prop_assert_eq!(
            s.injected_msgs,
            s.delivered_msgs + s.killed_msgs + s.unroutable_msgs
        );
        prop_assert_eq!(net.in_flight(), 0);
        prop_assert!(!s.deadlock, "XY cannot deadlock");
    }

    /// Decision latency scales base latency linearly: each extra cycle per
    /// step adds exactly one cycle per routed hop on an idle network.
    #[test]
    fn decision_latency_scaling(steps in 1u32..4, hops in 1u32..6) {
        let mesh = Mesh2D::new(7, 1);
        let src = NodeId(0);
        let dst = NodeId(hops);
        let mut lat = Vec::new();
        for cps in [1u32, steps] {
            let cfg = SimConfig { decision_cycles_per_step: cps, ..Default::default() };
            let mut net = Network::builder(Arc::new(mesh.clone())).config(cfg).build(&Xy(mesh.clone())).expect("valid config");
            net.set_measuring(true);
            net.send(src, dst, 2).unwrap();
            prop_assert!(net.drain(10_000));
            lat.push(net.stats.latency.min);
        }
        // `hops` routing decisions on the path, each slowed by (steps-1)
        prop_assert_eq!(lat[1] - lat[0], ((steps - 1) * hops) as u64);
    }

    /// Throughput accounting is consistent with the measured flit count.
    #[test]
    fn throughput_consistency(rate in 0.02f64..0.2, seed in 0u64..200) {
        let mesh = Mesh2D::new(4, 4);
        let mut net = Network::builder(Arc::new(mesh.clone())).build(&Xy(mesh.clone())).expect("valid config");
        let mut tf = TrafficSource::new(Pattern::Uniform, rate, 4, seed);
        net.set_measuring(true);
        net.add_measured_cycles(300);
        for _ in 0..300 {
            for (s, d, l) in tf.tick(&mesh, net.faults()) {
                net.send(s, d, l).unwrap();
            }
            net.step();
        }
        net.set_measuring(false);
        prop_assert!(net.drain(50_000));
        let s = &net.stats;
        let expect = s.measured_flits as f64 / (300.0 * 16.0);
        prop_assert!((s.throughput() - expect).abs() < 1e-12);
        // accepted throughput can exceed offered only by rounding noise
        prop_assert!(s.throughput() <= rate * 1.8 + 0.05);
    }

    /// Active-set scheduling is observationally identical to the dense
    /// scan under arbitrary scripted fault/repair sequences with source
    /// retransmission: same stats, same per-cycle movement — and the run
    /// never strands work (drains once the plan is exhausted).
    #[test]
    fn active_matches_dense_under_random_fault_scripts(
        seed in 0u64..500,
        rate in 0.02f64..0.2,
        script in proptest::collection::vec(
            (10u64..300, 0u32..16, 0u8..4, 20u64..150), 0..6),
        retry_arm in 0u8..2,
    ) {
        let retry = retry_arm == 1;
        let mesh = Mesh2D::new(4, 4);
        // random fault-plan script: transient link faults at random spots
        let mut plan = FaultPlan::new();
        for &(cycle, node, dir, repair) in &script {
            plan.push(cycle, FaultAction::FailLink(NodeId(node), PortId(dir)));
            plan.push(cycle + repair, FaultAction::RepairLink(NodeId(node), PortId(dir)));
        }
        let mk = |dense: bool| {
            let mut b = Network::builder(Arc::new(mesh.clone())).fault_plan(plan.clone());
            if retry {
                b = b.retry(RetryPolicy { max_attempts: 4, backoff_cycles: 24 });
            }
            let mut net = b.build(&Xy(mesh.clone())).expect("valid config");
            net.set_dense_reference(dense);
            net
        };
        let mut act = mk(false);
        let mut dense = mk(true);
        let mut tf_a = TrafficSource::new(Pattern::Uniform, rate, 4, seed);
        let mut tf_d = TrafficSource::new(Pattern::Uniform, rate, 4, seed);
        for _ in 0..500u64 {
            for (s, d, l) in tf_a.tick(&mesh, act.faults()) {
                let _ = act.send(s, d, l);
            }
            for (s, d, l) in tf_d.tick(&mesh, dense.faults()) {
                let _ = dense.send(s, d, l);
            }
            act.step();
            dense.step();
            prop_assert_eq!(
                act.last_step_moved(), dense.last_step_moved(),
                "moved diverged at cycle {}", dense.cycle()
            );
        }
        // no node is ever stranded: every remaining worm either finishes or
        // is resolved (XY marks fault-blocked messages unroutable; retries
        // are bounded), so a generous budget must always drain both
        prop_assert!(act.drain(100_000), "active path stranded work");
        prop_assert!(dense.drain(100_000), "dense path stranded work");
        prop_assert_eq!(&act.stats, &dense.stats);
        prop_assert!(act.stats.accounting_balanced());
        prop_assert_eq!(act.in_flight(), 0);
        // and once idle, the active set is empty — no ghost activations
        prop_assert!(act.active_nodes().is_empty());
    }
}
