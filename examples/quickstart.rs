//! Quickstart: compile a rule program, load it into the flexible router,
//! and run a small mesh network.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ftrouter::core::{configure, RuleRouter};
use ftrouter::prelude::*;
use std::sync::Arc;

fn main() {
    // 1. A routing algorithm is a rule program — here the paper's
    //    introductory example style: XY dimension-order routing.
    let cfg = configure("xy", ftrouter::algos::rules_src::XY).expect("program compiles");
    println!("compiled `{}`:", cfg.name);
    for rb in &cfg.cost.rulebases {
        println!("  rule base {:<12} {:>5} entries x {} bits", rb.name, rb.entries, rb.width_bits);
    }

    // 2. Load it into the router and build a 4x4 mesh network with the
    //    observability layer attached: a ring of recent trace events and
    //    a metrics registry.
    let mesh = Mesh2D::new(4, 4);
    let router = RuleRouter::new(cfg, mesh.clone(), 1);
    let sink = Arc::new(RingSink::new(1 << 16));
    let registry = Arc::new(MetricsRegistry::new());
    let mut net = Network::builder(Arc::new(mesh.clone()))
        .trace(sink.clone())
        .metrics(registry.clone())
        .build(&router)
        .expect("valid config");

    // 3. Drive uniform random traffic for 2000 cycles.
    net.set_measuring(true);
    net.add_measured_cycles(2_000);
    let mut traffic = TrafficSource::new(Pattern::Uniform, 0.15, 4, 1);
    for _ in 0..2_000 {
        for (src, dst, len) in traffic.tick(&mesh, net.faults()) {
            net.send(src, dst, len).unwrap();
        }
        net.step();
    }
    assert!(net.drain(50_000), "network drains");

    // 4. Report.
    let s = &net.stats;
    println!("\nafter {} cycles on {}:", net.cycle(), mesh.name());
    println!("  delivered        {}", s.delivered_msgs);
    println!("  mean latency     {:.1} cycles", s.latency.mean());
    println!("  throughput       {:.4} flits/node/cycle", s.throughput());
    println!("  decision steps   {:.2} mean (rule interpretations)", s.decision_steps.mean());
    assert_eq!(s.delivered_msgs, s.injected_msgs);

    // 5. The same run, seen through the observability layer: the ring
    //    holds the most recent typed events, the registry the aggregates.
    let events = sink.events();
    let decisions = events.iter().filter(|e| e.kind.tag() == "route_decision").count();
    println!(
        "\ntrace ring: {} events retained ({} dropped), {} routing decisions",
        events.len(),
        sink.dropped(),
        decisions
    );
    println!("metrics: sim.delivered = {:?}", registry.counter_value("sim.delivered"));
    println!("\nEvery message was routed by the compiled rule tables. Swap the");
    println!("program (e.g. rules_src::WEST_FIRST) to change the network's");
    println!("behaviour without touching the router — the paper's flexibility claim.");
}
