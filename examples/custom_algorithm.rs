//! Writing a new routing algorithm as a rule program at runtime — the
//! paper's flexibility claim end to end: "the description of a routing
//! algorithm is compact and intuitive allowing even non-experts to
//! understand and modify the network behavior."
//!
//! The program below is written inline, compiled by the rule compiler,
//! loaded into the router, and compared against plain XY on a network
//! with a fault: the custom algorithm (a north-last turn model) routes
//! around it, XY cannot.
//!
//! ```text
//! cargo run --example custom_algorithm
//! ```

use ftrouter::core::{configure, RuleRouter};
use ftrouter::prelude::*;
use ftrouter::topo::EAST;
use std::sync::Arc;

/// North-last turn model: adaptive among E/W/S first, north hops last.
/// Return codes: 0..3 = E/W/N/S, 15 deliver, 14 wait, 13 unroutable.
const NORTH_LAST: &str = "
CONSTANT dirs = 0 TO 3
CONSTANT maxc = 31

VARIABLE xpos IN 0 TO maxc
VARIABLE ypos IN 0 TO maxc

INPUT xdes IN 0 TO maxc
INPUT ydes IN 0 TO maxc
INPUT free[dirs] IN bool
INPUT linkok[dirs] IN bool
INPUT out_queue[dirs] IN 0 TO 255

ON route_msg() RETURNS 0 TO 15 NFT
  IF xpos = xdes AND ypos = ydes THEN RETURN(15);
  -- adaptive part: E / W / S while any is still needed
  IF xpos < xdes AND ydes < ypos AND free(0) AND free(3)
    THEN RETURN(argmin(out_queue, {0, 3}));
  IF xdes < xpos AND ydes < ypos AND free(1) AND free(3)
    THEN RETURN(argmin(out_queue, {1, 3}));
  IF xpos < xdes AND free(0) THEN RETURN(0);
  IF xdes < xpos AND free(1) THEN RETURN(1);
  IF ydes < ypos AND free(3) THEN RETURN(3);
  IF xpos < xdes AND linkok(0) THEN RETURN(14);
  IF xdes < xpos AND linkok(1) THEN RETURN(14);
  IF ydes < ypos AND linkok(3) THEN RETURN(14);
  -- only north remains: go north last
  IF ypos < ydes AND free(2) THEN RETURN(2);
  IF ypos < ydes AND linkok(2) THEN RETURN(14);
  IF TRUE THEN RETURN(13);
END route_msg;
";

fn run(name: &str, src: &str, mesh: &Mesh2D) -> (u64, u64) {
    let cfg = configure(name, src).expect("program compiles");
    println!(
        "{name}: {} table bits in {} rule base(s)",
        cfg.cost.total_table_bits(),
        cfg.cost.rulebases.len()
    );
    let router = RuleRouter::new(cfg, mesh.clone(), 1);
    let mut net = Network::builder(Arc::new(mesh.clone())).build(&router).expect("valid config");
    // fault on the x-first path from (0,2) to (3,1)
    net.inject_link_fault(mesh.node_at(1, 2), EAST);
    net.send(mesh.node_at(0, 2), mesh.node_at(3, 1), 4).unwrap();
    net.drain(5_000);
    (net.stats.delivered_msgs, net.stats.unroutable_msgs)
}

fn main() {
    let mesh = Mesh2D::new(6, 6);
    println!("same router hardware, two rule programs, one broken link:\n");

    let (d_xy, u_xy) = run("xy", ftrouter::algos::rules_src::XY, &mesh);
    println!("  -> xy:         delivered {d_xy}, unroutable {u_xy}\n");

    let (d_nl, u_nl) = run("north-last", NORTH_LAST, &mesh);
    println!("  -> north-last: delivered {d_nl}, unroutable {u_nl}\n");

    assert_eq!((d_xy, u_xy), (0, 1), "oblivious XY is stuck on the fault");
    assert_eq!((d_nl, u_nl), (1, 0), "the custom program detours south around it");
    println!("north-last detoured around the fault that stopped XY cold —");
    println!("no new silicon, just a different rule table.");
}
