//! Fault-tolerant mesh scenario: an 8x8 cluster interconnect running NAFTA
//! survives link and node failures mid-operation.
//!
//! Demonstrates the paper's motivation: "the nodes of clusters are
//! distributed throughout rooms, so faults in the network may not be as
//! rare as for dedicated parallel machines" — the network itself absorbs
//! them instead of escalating to checkpointing protocols.
//!
//! ```text
//! cargo run --example fault_tolerant_mesh
//! ```

use ftrouter::prelude::*;
use ftrouter::topo::{EAST, NORTH};
use std::sync::Arc;

fn main() {
    let mesh = Mesh2D::new(8, 8);
    let algo = Nafta::new(mesh.clone());
    let mut net = Network::builder(Arc::new(mesh.clone())).build(&algo).expect("valid config");
    let mut traffic = TrafficSource::new(Pattern::Uniform, 0.15, 4, 2);

    net.set_measuring(true);
    net.add_measured_cycles(6_000);

    let mut checkpoints = Vec::new();
    let mut last_delivered = 0;
    for cycle in 0..6_000u32 {
        match cycle {
            1_500 => {
                println!("cycle 1500: link (3,3)-(4,3) fails");
                net.inject_link_fault(mesh.node_at(3, 3), EAST);
            }
            3_000 => {
                println!("cycle 3000: link (5,5)-(5,6) fails");
                net.inject_link_fault(mesh.node_at(5, 5), NORTH);
            }
            4_500 => {
                println!("cycle 4500: node (2,6) dies");
                net.inject_node_fault(mesh.node_at(2, 6));
            }
            _ => {}
        }
        for (s, d, l) in traffic.tick(&mesh, net.faults()) {
            net.send(s, d, l).unwrap();
        }
        net.step();
        if cycle % 1_500 == 1_499 {
            let s = &net.stats;
            checkpoints.push((cycle + 1, s.delivered_msgs - last_delivered));
            last_delivered = s.delivered_msgs;
        }
    }
    assert!(net.drain(100_000), "network drains despite the faults");

    let s = &net.stats;
    println!("\ndelivery rate per 1500-cycle window (stays steady across faults):");
    for (cycle, delivered) in &checkpoints {
        println!("  up to cycle {cycle:>5}: {delivered} messages");
    }
    println!("\ntotals:");
    println!("  injected     {}", s.injected_msgs);
    println!("  delivered    {}", s.delivered_msgs);
    println!("  ripped worms {} (messages cut by a fault mid-flight; higher-level", s.killed_msgs);
    println!("               protocols would retransmit exactly these few)");
    println!("  unroutable   {}", s.unroutable_msgs);
    println!("  mean latency {:.1} cycles", s.latency.mean());
    println!("  mean detour  {:.3} extra hops", s.mean_excess_hops());
    println!("  control msgs {} (fault-state propagation)", s.control_msgs);
    assert!(!s.deadlock);
    assert!(s.delivered_msgs + s.killed_msgs + s.unroutable_msgs == s.injected_msgs);
}
