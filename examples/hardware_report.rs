//! The hardware cost report for every shipped configuration — the §5
//! evaluation as a one-shot overview: table bits, FCFB demands, register
//! bits, and the fault-tolerance overhead split.
//!
//! ```text
//! cargo run --example hardware_report
//! ```

use ftrouter::core::{registry, HardwareReport};

fn main() {
    println!("Hardware cost of the shipped router configurations");
    println!("(entries x width = rule-table RAM; nft = non-fault-tolerant subset)\n");

    for name in registry::list_configurations() {
        let cfg = registry::configuration(name).expect("shipped configs compile");
        println!("================ {} ================\n", name);
        println!("{}", cfg.cost.to_markdown());
        let r = HardwareReport::of(&cfg);
        if r.nft_table_bits > 0 && r.nft_table_bits < r.table_bits {
            println!(
                "fault-tolerance overhead: {} table bits ({:.2}x), {} register bits\n",
                r.ft_table_overhead(),
                r.ft_table_factor(),
                r.ft_only_register_bits,
            );
        } else {
            println!("(no fault-tolerance split: single-purpose program)\n");
        }
    }

    println!("Paper reference points:");
    println!("  NAFTA   — Table 1: 11 rule bases; 159 register bits, 47 FT-only");
    println!("  ROUTE_C — Table 2: 4 rule bases, 2960 table bits (d=6, a=2),");
    println!("            15d+2·log d+3 register bits, five virtual channels");
    println!("\nSee EXPERIMENTS.md for the full paper-vs-measured comparison.");
}
