//! ROUTE_C on a 6-dimensional hypercube: safety-state propagation and
//! routing around faulty nodes.
//!
//! Shows the state machine of the paper's Figure 4 at work: node failures
//! flip neighbours to `lfault`, clusters of failures create `unsafe`
//! nodes, and transit traffic avoids them while delivery continues.
//!
//! ```text
//! cargo run --example hypercube_route_c
//! ```

use ftrouter::algos::route_c::{totally_unsafe, SafetyState};
use ftrouter::prelude::*;
use std::sync::Arc;

fn state_histogram(net: &Network, cube: &Hypercube) -> [usize; 5] {
    let mut h = [0usize; 5];
    for n in cube.nodes() {
        if net.faults().node_faulty(n) {
            h[SafetyState::Faulty as usize] += 1;
        } else {
            let s = net.controller(n).state_word() as usize;
            h[s.min(4)] += 1;
        }
    }
    h
}

fn print_states(label: &str, h: [usize; 5]) {
    println!(
        "{label}: safe={} lfault={} ounsafe={} sunsafe={} faulty={}",
        h[0], h[1], h[2], h[3], h[4]
    );
}

fn main() {
    let cube = Hypercube::new(6);
    let algo = RouteC::new(cube.clone());
    let mut net = Network::builder(Arc::new(cube.clone())).build(&algo).expect("valid config");

    print_states("initial   ", state_histogram(&net, &cube));

    // kill three nodes clustered around node 0: its neighbours 1, 2, 4
    for &n in &[1u32, 2, 4] {
        net.inject_node_fault(NodeId(n));
    }
    let settled = net.settle_control(10_000).expect("monotone propagation settles");
    println!("fault propagation settled in {settled} cycles");
    print_states("after flts", state_histogram(&net, &cube));

    let s0 = SafetyState::Safe; // node 0 now has 3 faulty neighbours
    let w = net.controller(NodeId(0)).state_word();
    println!(
        "node 0 (three dead neighbours) is now state {w} ({})",
        if w >= 2 { "unsafe - transit traffic avoids it" } else { "safe" }
    );
    assert!(w >= 2, "{s0:?}");

    // totally-unsafe check (paper: only if more than n-1 nodes faulty)
    let states: Vec<SafetyState> = cube
        .nodes()
        .map(|n| {
            if net.faults().node_faulty(n) {
                SafetyState::Faulty
            } else {
                match net.controller(n).state_word() {
                    1 => SafetyState::LinkFault,
                    2 => SafetyState::OrdUnsafe,
                    3 => SafetyState::StrUnsafe,
                    _ => SafetyState::Safe,
                }
            }
        })
        .collect();
    println!("totally unsafe: {}", totally_unsafe(&states));
    assert!(!totally_unsafe(&states));

    // run traffic among the 61 alive nodes
    net.set_measuring(true);
    net.add_measured_cycles(4_000);
    let mut traffic = TrafficSource::new(Pattern::Uniform, 0.1, 4, 3);
    for _ in 0..4_000 {
        for (s, d, l) in traffic.tick(&cube, net.faults()) {
            net.send(s, d, l).unwrap();
        }
        net.step();
    }
    assert!(net.drain(100_000));

    let s = &net.stats;
    println!("\ntraffic results with 3/64 nodes dead:");
    println!("  delivered    {} / {}", s.delivered_msgs, s.injected_msgs);
    println!("  mean latency {:.1} cycles", s.latency.mean());
    println!(
        "  mean detour  {:.3} extra hops (misrouting around unsafe nodes)",
        s.mean_excess_hops()
    );
    println!(
        "  decisions    {:.2} rule interpretations each (paper: always 2)",
        s.decision_steps.mean()
    );
    assert!(!s.deadlock);
    assert_eq!(s.unroutable_msgs, 0, "3 faults are well within ROUTE_C's tolerance");
}
