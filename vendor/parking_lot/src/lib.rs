//! Offline stand-in for `parking_lot`, wrapping `std::sync` primitives
//! behind parking_lot's non-poisoning API (`lock()` returns the guard
//! directly). Functionally equivalent for this workspace's uses; the
//! real crate is only a performance upgrade.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutex with parking_lot's panic-on-poison `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, returning the guard directly.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// RwLock with parking_lot's panic-on-poison signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
