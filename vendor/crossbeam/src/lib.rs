//! Offline stand-in for `crossbeam`, providing the `thread::scope` API
//! on top of `std::thread::scope` (stabilised in Rust 1.63, after
//! crossbeam's scoped threads were designed). Only the surface this
//! workspace uses is provided. One deliberate deviation: the scope
//! handle is passed to closures by value (it is `Copy`) rather than by
//! reference, which sidesteps the invariance of `std::thread::Scope`;
//! `|s| ...` / `|_| ...` call sites are source-compatible.

/// Scoped threads mirroring `crossbeam::thread`.
pub mod thread {
    use std::thread as std_thread;

    /// Panic payload carried out of a scope whose thread panicked.
    pub type Payload = Box<dyn std::any::Any + Send + 'static>;

    /// Copyable spawn handle wrapping `std::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope again
        /// (crossbeam's signature) so nested spawns are possible.
        pub fn spawn<F, T>(self, f: F) -> std_thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            self.inner.spawn(move || f(self))
        }
    }

    /// Runs `f` with a scope in which threads can borrow from the caller;
    /// joins them all before returning. Returns `Err` if any spawned
    /// thread panicked (crossbeam's contract), carrying the panic
    /// payload.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Payload>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std_thread::scope(|s| f(Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_borrows() {
        let data = vec![1, 2, 3];
        let sum = std::sync::atomic::AtomicI32::new(0);
        let sum_ref = &sum;
        super::thread::scope(|s| {
            for &x in &data {
                s.spawn(move |_| sum_ref.fetch_add(x, std::sync::atomic::Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(sum.load(std::sync::atomic::Ordering::Relaxed), 6);
    }

    #[test]
    fn scope_reports_panics() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
