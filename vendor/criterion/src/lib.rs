//! Offline stand-in for `criterion`. Provides the macro and type surface
//! the workspace's benches use (`criterion_group!`/`criterion_main!`,
//! `Criterion::benchmark_group`, `bench_function`, `iter`,
//! `iter_batched`, `BatchSize`) with a simple warm-up + fixed-duration
//! measurement loop instead of criterion's statistical machinery. Good
//! enough to smoke-run the benches and print per-iteration times;
//! numbers are indicative, not rigorous.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export position matching `criterion::black_box`.
pub use std::hint::black_box;

/// Batch sizing hints, API-compatible with criterion's enum.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration state: batches of many iterations.
    SmallInput,
    /// Larger per-iteration state.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { measure: Duration::from_millis(300) }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.measure, &id.to_string(), f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's fixed measurement
    /// window makes the statistical sample count moot.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measure = t;
        self
    }

    /// Times `f` and prints a mean per-iteration figure.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion.measure, &label, f);
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(measure: Duration, label: &str, mut f: F) {
    // Warm-up pass so lazy initialisation doesn't pollute the figure.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);

    let mut iters: u64 = 1;
    let mut total = Duration::ZERO;
    let mut done: u64 = 0;
    let start = Instant::now();
    while start.elapsed() < measure {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        total += b.elapsed;
        done += iters;
        iters = (iters * 2).min(1 << 20);
    }
    let per_iter = if done > 0 { total / done as u32 } else { Duration::ZERO };
    println!("{label:<48} {per_iter:>12.2?}/iter  ({done} iterations)");
}

/// Per-benchmark timing handle.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
