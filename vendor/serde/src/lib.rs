//! Offline stand-in for the `serde` crate.
//!
//! This workspace builds in a hermetic environment with no registry
//! access, and nothing in the tree actually serializes anything yet (the
//! real crates only `#[derive(Serialize, Deserialize)]` for
//! forward-compatibility). This shim keeps those derives compiling: the
//! traits exist, and the derive macros expand to nothing. Swap the
//! `[workspace.dependencies]` entry back to the registry version when a
//! real serializer is needed.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// Sub-module so `serde::de::...` paths resolve.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Sub-module so `serde::ser::...` paths resolve.
pub mod ser {
    pub use crate::Serialize;
}
