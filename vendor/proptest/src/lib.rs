//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: `Strategy` with `prop_map`/`boxed`, range and tuple
//! strategies, `Just`, `any`, `prop_oneof!`, `collection::vec`,
//! `array::uniform4`, the `proptest!` test macro, and the
//! `prop_assert*`/`prop_assume!` macros. Cases are generated from a
//! deterministic per-test seed (an FNV hash of the test name), so runs
//! are reproducible; there is no shrinking — a failing case reports its
//! generated inputs' case number instead.

use std::fmt;
use std::ops::{Range, RangeInclusive};

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Something usable as a collection size: an exact size or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a vector strategy with the given element strategy and size.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.hi - self.size.lo + 1;
            let n = self.size.lo + (rng.next_u64() as usize) % span;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Fixed-size array strategies (`proptest::array::uniform4`).
pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `[T; N]` from one element strategy.
    pub struct UniformArray<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.0.generate(rng))
        }
    }

    /// Builds a 4-element array strategy.
    pub fn uniform4<S: Strategy>(element: S) -> UniformArray<S, 4> {
        UniformArray(element)
    }
}

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    type Strategy: strategy::Strategy<Value = Self>;
    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy over a type's full value range.
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty => $conv:expr),* $(,)?) => {$(
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyStrategy(std::marker::PhantomData)
            }
        }
        impl strategy::Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                let conv: fn(u64) -> $t = $conv;
                conv(rng.next_u64())
            }
        }
    )*};
}

impl_arbitrary_int!(
    u8 => |v| v as u8,
    u16 => |v| v as u16,
    u32 => |v| v as u32,
    u64 => |v| v,
    usize => |v| v as usize,
    i8 => |v| v as i8,
    i16 => |v| v as i16,
    i32 => |v| v as i32,
    i64 => |v| v as i64,
    bool => |v| v & 1 == 1,
);

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    type Strategy = ArrayAnyStrategy<T::Strategy, N>;
    fn arbitrary() -> Self::Strategy {
        ArrayAnyStrategy(std::array::from_fn(|_| T::arbitrary()))
    }
}

/// Canonical strategy for arrays of `Arbitrary` elements.
pub struct ArrayAnyStrategy<S, const N: usize>([S; N]);

impl<S: strategy::Strategy, const N: usize> strategy::Strategy for ArrayAnyStrategy<S, N> {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut test_runner::TestRng) -> Self::Value {
        std::array::from_fn(|i| self.0[i].generate(rng))
    }
}

/// Returns the canonical strategy for `T` (`any::<u8>()` etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

// ---- range strategies ------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl strategy::Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl strategy::Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl strategy::Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut test_runner::TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Error raised by `prop_assert!`/`prop_assume!` inside a test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// Assertion failure: the property does not hold.
    Fail(String),
    /// Assumption failure: skip this case.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure error.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
    /// Builds a rejection (skipped case).
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
    /// True if the case should be skipped rather than failed.
    pub fn is_rejection(&self) -> bool {
        matches!(self, TestCaseError::Reject(_))
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Everything a property test file typically imports.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, Arbitrary, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

// ---- macros ----------------------------------------------------------

/// Chooses uniformly between several strategies for the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts a condition inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`): {}",
            stringify!($a), stringify!($b), a, b, format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}` (both: `{:?}`): {}",
            stringify!($a), stringify!($b), a, format!($($fmt)+)
        );
    }};
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(format!($($fmt)+)));
        }
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            // Deterministic per-test seed: FNV-1a over the test name.
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in stringify!($name).bytes() {
                seed ^= byte as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let mut rng = $crate::test_runner::TestRng::new(seed);
            let mut ran: u32 = 0;
            let mut rejected: u32 = 0;
            let max_attempts = config.cases.saturating_mul(8).max(64);
            let mut attempts: u32 = 0;
            while ran < config.cases && attempts < max_attempts {
                attempts += 1;
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => ran += 1,
                    ::std::result::Result::Err(e) if e.is_rejection() => rejected += 1,
                    ::std::result::Result::Err(e) => {
                        panic!("proptest case {} of `{}` failed: {}", ran, stringify!($name), e)
                    }
                }
            }
            let _ = rejected;
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}
