//! Test configuration and the deterministic RNG driving generation.

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps hermetic debug-mode CI
        // runs fast while still exercising the generators broadly.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic xoshiro256++ generator used for all value generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates a generator from a 64-bit seed (SplitMix64-expanded).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
