//! Core strategy trait and combinators.

use crate::test_runner::TestRng;

/// A generator of values for property tests.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// simply produces one value per call.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Filters generated values, retrying until `f` accepts one.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f, whence }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Result of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter gave up after 1000 rejections: {}", self.whence);
    }
}

/// Type-erased strategy (result of [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice between type-erased strategies (`prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds a union; panics on an empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() as usize) % self.0.len();
        self.0[i].generate(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}
