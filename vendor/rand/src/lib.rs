//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The workspace builds hermetically with no registry access, so this
//! shim provides the exact surface the tree uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` methods `gen`,
//! `gen_range` (half-open and inclusive integer ranges, plus `f64`) and
//! `gen_bool`. The generator is SplitMix64-seeded xoshiro256++ — a real,
//! well-distributed PRNG, just not the ChaCha12 of upstream `StdRng`, so
//! seeded streams differ from upstream (no test in this tree depends on
//! upstream's exact stream).

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding trait mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly over their whole value range
/// (the shim's stand-in for `Standard` distribution sampling).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience methods mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` over its full range.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Same generator under the `SmallRng` name.
    pub type SmallRng = StdRng;

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_rate() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "got {hits}");
    }
}
