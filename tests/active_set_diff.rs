//! Lockstep differential test: every step backend against every other.
//!
//! `Network::step` normally iterates only nodes with work (the active
//! set); `set_dense_reference(true)` retains the original every-node scan;
//! `NetworkBuilder::threads(n)` shards the scan across `n` regions with a
//! conservative barrier (DESIGN.md §14). All backends must be
//! indistinguishable to any observer: bit-identical `SimStats`,
//! bit-identical trace-event streams, and the same per-cycle `moved`
//! flag. This runs the E15 campaign shape — retrying NAFTA on a faulty
//! 6x6 mesh — across a (retry x fault-count x seed) matrix, plus a
//! ROUTE_C 4-cube arm, advancing dense, active, 2-thread-sharded
//! (inline) and 8-thread-sharded (forced OS threads) networks in
//! lockstep.

use ftrouter::prelude::*;
use std::sync::Arc;

/// One backend under test: a network plus its own trace sink and an
/// identically seeded traffic source.
struct Arm {
    name: &'static str,
    net: Network,
    sink: Arc<RingSink>,
    tf: TrafficSource,
}

/// How an [`Arm`] computes its cycles.
#[derive(Clone, Copy)]
enum Backend {
    Dense,
    Active,
    /// `threads` shards; `force_spawn` pins the spawn threshold to zero
    /// so real OS threads run even on a 36-node mesh.
    Sharded {
        threads: usize,
        force_spawn: bool,
    },
}

/// The standard backend matrix every differential test runs: both
/// sequential scans, an inline-sharded and a really-threaded engine.
const BACKENDS: [(&str, Backend); 4] = [
    ("dense", Backend::Dense),
    ("active", Backend::Active),
    ("sharded-2 (inline)", Backend::Sharded { threads: 2, force_spawn: false }),
    ("sharded-8 (spawned)", Backend::Sharded { threads: 8, force_spawn: true }),
];

struct Squad {
    arms: Vec<Arm>,
    topo: Arc<dyn Topology>,
}

impl Squad {
    /// Builds one arm per backend. `mk` receives a pre-tuned builder and
    /// finishes it (fault plan, retry, trace sink, algorithm), returning
    /// the network and its ring sink; `tf` seeds one traffic source per
    /// arm.
    fn build(
        topo: Arc<dyn Topology>,
        mk: impl Fn(NetworkBuilder) -> (Network, Arc<RingSink>),
        tf: impl Fn() -> TrafficSource,
    ) -> Self {
        let arms = BACKENDS
            .iter()
            .map(|&(name, backend)| {
                let mut b = Network::builder(topo.clone());
                if let Backend::Sharded { threads, force_spawn } = backend {
                    b = b.threads(threads);
                    b = b.spawn_threshold(if force_spawn { 0 } else { usize::MAX });
                }
                let (mut net, sink) = mk(b);
                net.set_dense_reference(matches!(backend, Backend::Dense));
                net.set_measuring(true);
                Arm { name, net, sink, tf: tf() }
            })
            .collect();
        Squad { arms, topo }
    }

    fn lockstep(&mut self, cycles: u64, label: &str) {
        for _ in 0..cycles {
            for arm in &mut self.arms {
                for (s, d, l) in arm.tf.tick(self.topo.as_ref(), arm.net.faults()) {
                    let _ = arm.net.send(s, d, l);
                }
                arm.net.step();
            }
            self.assert_moved_agrees(label);
        }
    }

    fn assert_moved_agrees(&self, label: &str) {
        let reference = &self.arms[0];
        for arm in &self.arms[1..] {
            assert_eq!(
                arm.net.last_step_moved(),
                reference.net.last_step_moved(),
                "{label}: moved flag diverged ({} vs {}) at cycle {}",
                arm.name,
                reference.name,
                reference.net.cycle()
            );
        }
    }

    fn finish(mut self, label: &str) {
        // drain all arms (bounded: a diverging arm must not hang the suite)
        let mut budget = 30_000u64;
        while self.arms.iter().any(|a| a.net.in_flight() > 0) && budget > 0 {
            for arm in &mut self.arms {
                arm.net.step();
            }
            self.assert_moved_agrees(label);
            budget -= 1;
        }
        let (reference, rest) = self.arms.split_first().expect("non-empty squad");
        for arm in rest {
            assert_eq!(
                arm.net.stats, reference.net.stats,
                "{label}: SimStats diverged ({} vs {})",
                arm.name, reference.name
            );
            assert_eq!(
                arm.sink.events(),
                reference.sink.events(),
                "{label}: trace streams diverged ({} vs {})",
                arm.name,
                reference.name
            );
        }
        assert!(reference.net.stats.accounting_balanced(), "{label}: unbalanced accounting");
        assert!(reference.net.stats.injected_msgs > 0, "{label}: no traffic flowed");
    }
}

fn nafta_squad(retry: bool, faults: usize, seed: u64, load: f64) -> Squad {
    let mesh = Mesh2D::new(6, 6);
    let algo = Nafta::new(mesh.clone());
    Squad::build(
        Arc::new(mesh.clone()),
        move |mut b| {
            let plan = FaultPlan::random_transient_links(&mesh, faults, 100..700, 150, seed);
            let sink = Arc::new(RingSink::new(1 << 17));
            b = b.fault_plan(plan).trace(sink.clone());
            if retry {
                b = b.retry(RetryPolicy { max_attempts: 6, backoff_cycles: 48 });
            }
            (b.build(&algo).expect("valid config"), sink)
        },
        move || TrafficSource::new(Pattern::Uniform, load, 8, seed ^ 0xbeef),
    )
}

#[test]
fn nafta_campaign_matrix_is_lockstep_identical() {
    for retry in [false, true] {
        for faults in [0usize, 8, 16] {
            for seed in [11u64, 29] {
                let label = format!("nafta retry={retry} faults={faults} seed={seed}");
                let mut squad = nafta_squad(retry, faults, seed, 0.08);
                squad.lockstep(900, &label);
                squad.finish(&label);
            }
        }
    }
}

#[test]
fn route_c_hypercube_is_lockstep_identical() {
    let cube = Hypercube::new(4);
    let algo = RouteC::new(cube.clone());
    let mk_cube = cube.clone();
    let mut squad = Squad::build(
        Arc::new(cube),
        move |b| {
            let plan = FaultPlan::random_transient_links(&mk_cube, 4, 80..500, 120, 7);
            let sink = Arc::new(RingSink::new(1 << 17));
            let net = b
                .fault_plan(plan)
                .retry(RetryPolicy { max_attempts: 4, backoff_cycles: 32 })
                .trace(sink.clone())
                .build(&algo)
                .expect("valid config");
            (net, sink)
        },
        || TrafficSource::new(Pattern::Uniform, 0.1, 6, 1234),
    );
    squad.lockstep(700, "route_c 4-cube");
    squad.finish("route_c 4-cube");
}

#[test]
fn mode_switch_at_any_boundary_is_safe() {
    // flipping between dense and active mid-run must not lose work: the
    // dense step rebuilds the activation bookkeeping exactly
    let mesh = Mesh2D::new(5, 5);
    let mut net = Network::builder(Arc::new(mesh.clone()))
        .build(&Nafta::new(mesh.clone()))
        .expect("valid config");
    let mut tf = TrafficSource::new(Pattern::Uniform, 0.12, 6, 99);
    let topo: Arc<dyn Topology> = Arc::new(mesh);
    for cycle in 0..600u64 {
        net.set_dense_reference(cycle % 7 < 3); // flip modes on a weird period
        for (s, d, l) in tf.tick(topo.as_ref(), net.faults()) {
            let _ = net.send(s, d, l);
        }
        net.step();
    }
    net.set_dense_reference(false);
    assert!(net.drain(30_000), "must drain after arbitrary mode flips");
    assert!(net.stats.accounting_balanced());
    assert!(net.stats.delivered_msgs > 100);
    assert_eq!(net.stats.delivered_msgs, net.stats.injected_msgs, "healthy mesh loses nothing");
}
