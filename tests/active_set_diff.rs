//! Lockstep differential test: active-set scheduling vs the dense
//! reference scan.
//!
//! `Network::step` normally iterates only nodes with work (the active
//! set); `set_dense_reference(true)` retains the original every-node scan.
//! The two paths must be indistinguishable to any observer: bit-identical
//! `SimStats`, bit-identical trace-event streams, and the same per-cycle
//! `moved` flag. This runs the E15 campaign shape — retrying NAFTA on a
//! faulty 6x6 mesh — across a (retry x fault-count x seed) matrix, plus a
//! ROUTE_C 4-cube arm, advancing both networks in lockstep.

use ftrouter::prelude::*;
use std::sync::Arc;

struct Pair {
    act: Network,
    dense: Network,
    act_sink: Arc<RingSink>,
    dense_sink: Arc<RingSink>,
    act_tf: TrafficSource,
    dense_tf: TrafficSource,
    topo: Arc<dyn Topology>,
}

impl Pair {
    fn lockstep(&mut self, cycles: u64, label: &str) {
        for _ in 0..cycles {
            for (s, d, l) in self.act_tf.tick(self.topo.as_ref(), self.act.faults()) {
                let _ = self.act.send(s, d, l);
            }
            for (s, d, l) in self.dense_tf.tick(self.topo.as_ref(), self.dense.faults()) {
                let _ = self.dense.send(s, d, l);
            }
            self.act.step();
            self.dense.step();
            assert_eq!(
                self.act.last_step_moved(),
                self.dense.last_step_moved(),
                "{label}: moved flag diverged at cycle {}",
                self.dense.cycle()
            );
        }
    }

    fn finish(mut self, label: &str) {
        // drain both (bounded: unroutable+no-retry arms can strand nothing,
        // but a diverging pair must not hang the suite)
        let mut budget = 30_000u64;
        while (self.act.in_flight() > 0 || self.dense.in_flight() > 0) && budget > 0 {
            self.act.step();
            self.dense.step();
            assert_eq!(
                self.act.last_step_moved(),
                self.dense.last_step_moved(),
                "{label}: moved flag diverged at cycle {}",
                self.dense.cycle()
            );
            budget -= 1;
        }
        assert_eq!(self.act.stats, self.dense.stats, "{label}: SimStats diverged");
        assert_eq!(
            self.act_sink.events(),
            self.dense_sink.events(),
            "{label}: trace streams diverged"
        );
        assert!(self.act.stats.accounting_balanced(), "{label}: unbalanced accounting");
        assert!(self.act.stats.injected_msgs > 0, "{label}: no traffic flowed");
    }
}

fn nafta_pair(retry: bool, faults: usize, seed: u64, load: f64) -> Pair {
    let mesh = Mesh2D::new(6, 6);
    let mk = |dense: bool| {
        let plan = FaultPlan::random_transient_links(&mesh, faults, 100..700, 150, seed);
        let sink = Arc::new(RingSink::new(1 << 17));
        let mut b = Network::builder(Arc::new(mesh.clone())).fault_plan(plan).trace(sink.clone());
        if retry {
            b = b.retry(RetryPolicy { max_attempts: 6, backoff_cycles: 48 });
        }
        let mut net = b.build(&Nafta::new(mesh.clone())).expect("valid config");
        net.set_dense_reference(dense);
        net.set_measuring(true);
        (net, sink)
    };
    let (act, act_sink) = mk(false);
    let (dense, dense_sink) = mk(true);
    Pair {
        act,
        dense,
        act_sink,
        dense_sink,
        act_tf: TrafficSource::new(Pattern::Uniform, load, 8, seed ^ 0xbeef),
        dense_tf: TrafficSource::new(Pattern::Uniform, load, 8, seed ^ 0xbeef),
        topo: Arc::new(mesh),
    }
}

#[test]
fn nafta_campaign_matrix_is_lockstep_identical() {
    for retry in [false, true] {
        for faults in [0usize, 8, 16] {
            for seed in [11u64, 29] {
                let label = format!("nafta retry={retry} faults={faults} seed={seed}");
                let mut pair = nafta_pair(retry, faults, seed, 0.08);
                pair.lockstep(900, &label);
                pair.finish(&label);
            }
        }
    }
}

#[test]
fn route_c_hypercube_is_lockstep_identical() {
    let cube = Hypercube::new(4);
    let mk = |dense: bool| {
        let plan = FaultPlan::random_transient_links(&cube, 4, 80..500, 120, 7);
        let sink = Arc::new(RingSink::new(1 << 17));
        let mut net = Network::builder(Arc::new(cube.clone()))
            .fault_plan(plan)
            .retry(RetryPolicy { max_attempts: 4, backoff_cycles: 32 })
            .trace(sink.clone())
            .build(&RouteC::new(cube.clone()))
            .expect("valid config");
        net.set_dense_reference(dense);
        net.set_measuring(true);
        (net, sink)
    };
    let (act, act_sink) = mk(false);
    let (dense, dense_sink) = mk(true);
    let mut pair = Pair {
        act,
        dense,
        act_sink,
        dense_sink,
        act_tf: TrafficSource::new(Pattern::Uniform, 0.1, 6, 1234),
        dense_tf: TrafficSource::new(Pattern::Uniform, 0.1, 6, 1234),
        topo: Arc::new(cube),
    };
    pair.lockstep(700, "route_c 4-cube");
    pair.finish("route_c 4-cube");
}

#[test]
fn mode_switch_at_any_boundary_is_safe() {
    // flipping between dense and active mid-run must not lose work: the
    // dense step rebuilds the activation bookkeeping exactly
    let mesh = Mesh2D::new(5, 5);
    let mut net = Network::builder(Arc::new(mesh.clone()))
        .build(&Nafta::new(mesh.clone()))
        .expect("valid config");
    let mut tf = TrafficSource::new(Pattern::Uniform, 0.12, 6, 99);
    let topo: Arc<dyn Topology> = Arc::new(mesh);
    for cycle in 0..600u64 {
        net.set_dense_reference(cycle % 7 < 3); // flip modes on a weird period
        for (s, d, l) in tf.tick(topo.as_ref(), net.faults()) {
            let _ = net.send(s, d, l);
        }
        net.step();
    }
    net.set_dense_reference(false);
    assert!(net.drain(30_000), "must drain after arbitrary mode flips");
    assert!(net.stats.accounting_balanced());
    assert!(net.stats.delivered_msgs > 100);
    assert_eq!(net.stats.delivered_msgs, net.stats.injected_msgs, "healthy mesh loses nothing");
}
