//! Integration: every routing algorithm (native and rule-driven) on the
//! simulator — delivery, minimality, deadlock freedom.

use ftrouter::algos::{
    build_cdg, EcubeRouting, Nafta, Nara, RouteC, SpanningTreeRouting, WestFirst, XyRouting,
};
use ftrouter::core::{configure, registry, RuleRouter};
use ftrouter::sim::routing::RoutingAlgorithm;
use ftrouter::sim::{Network, Pattern, TrafficSource};
use ftrouter::topo::{FaultSet, Hypercube, Mesh2D, Topology};
use std::sync::Arc;

fn all_pairs<T: Topology + Clone + 'static>(topo: &T, algo: &dyn RoutingAlgorithm) -> Network {
    let mut net = Network::builder(Arc::new(topo.clone())).build(algo).expect("valid config");
    net.set_measuring(true);
    for a in topo.nodes() {
        for b in topo.nodes() {
            if a != b {
                net.send(a, b, 2).unwrap();
            }
        }
    }
    assert!(net.drain(500_000), "{} drains", algo.name());
    net
}

#[test]
fn every_mesh_algorithm_delivers_all_pairs_fault_free() {
    let mesh = Mesh2D::new(4, 4);
    let algos: Vec<Box<dyn RoutingAlgorithm>> = vec![
        Box::new(XyRouting::new(mesh.clone())),
        Box::new(WestFirst::new(mesh.clone())),
        Box::new(Nara::new(mesh.clone())),
        Box::new(Nafta::new(mesh.clone())),
        Box::new(SpanningTreeRouting::new(mesh.clone())),
    ];
    for algo in &algos {
        let net = all_pairs(&mesh, algo.as_ref());
        assert_eq!(net.stats.delivered_msgs, 240, "{}", algo.name());
        assert!(!net.stats.deadlock, "{}", algo.name());
    }
}

#[test]
fn every_cube_algorithm_delivers_all_pairs_fault_free() {
    let cube = Hypercube::new(4);
    let algos: Vec<Box<dyn RoutingAlgorithm>> = vec![
        Box::new(EcubeRouting::new(cube.clone())),
        Box::new(RouteC::new(cube.clone())),
        Box::new(RouteC::stripped(cube.clone())),
    ];
    for algo in &algos {
        let net = all_pairs(&cube, algo.as_ref());
        assert_eq!(net.stats.delivered_msgs, 240, "{}", algo.name());
        assert_eq!(net.stats.excess_hops, 0, "{} is minimal", algo.name());
    }
}

#[test]
fn channel_dependency_graphs_are_acyclic_for_all_algorithms() {
    let mesh = Mesh2D::new(4, 4);
    let cube = Hypercube::new(3);
    let mut faults = FaultSet::new();
    faults.inject_random_links(&mesh, 3, true, 9);

    let mesh_algos: Vec<Box<dyn RoutingAlgorithm>> = vec![
        Box::new(XyRouting::new(mesh.clone())),
        Box::new(WestFirst::new(mesh.clone())),
        Box::new(Nara::new(mesh.clone())),
        Box::new(Nafta::new(mesh.clone())),
        Box::new(SpanningTreeRouting::new(mesh.clone())),
    ];
    for algo in &mesh_algos {
        let g = build_cdg(&mesh, algo.as_ref(), &FaultSet::new());
        assert!(!g.has_cycle(), "{} fault-free", algo.name());
    }
    // fault-tolerant ones must stay acyclic under faults too
    let g = build_cdg(&mesh, &Nafta::new(mesh.clone()), &faults);
    assert!(!g.has_cycle(), "nafta with faults: {:?}", g.find_cycle());

    let g = build_cdg(&cube, &RouteC::new(cube.clone()), &FaultSet::new());
    assert!(!g.has_cycle(), "route_c fault-free");
}

#[test]
fn rule_driven_nafta_program_matches_nara_fault_free() {
    // fault-free, the NAFTA rule program routes like NARA: minimal,
    // single-interpretation decisions, everything delivered
    let mesh = Mesh2D::new(4, 4);
    let cfg = configure("nafta", ftrouter::algos::rules_src::NAFTA).unwrap();
    let router = RuleRouter::new(cfg, mesh.clone(), 1);
    let net = all_pairs(&mesh, &router);
    assert_eq!(net.stats.delivered_msgs, 240);
    assert_eq!(net.stats.excess_hops, 0, "minimal like NARA");
    assert!(
        net.stats.decision_steps.max <= 2,
        "contention may escalate to the ft base, faults never seen"
    );
}

#[test]
fn rule_driven_routers_survive_sustained_traffic() {
    let mesh = Mesh2D::new(5, 5);
    for name in ["xy", "west_first"] {
        let cfg = registry::configuration(name).unwrap();
        let router = RuleRouter::new(cfg, mesh.clone(), 1);
        let mut net =
            Network::builder(Arc::new(mesh.clone())).build(&router).expect("valid config");
        let mut tf = TrafficSource::new(Pattern::Uniform, 0.15, 4, 77);
        for _ in 0..600 {
            for (s, d, l) in tf.tick(&mesh, net.faults()) {
                net.send(s, d, l).unwrap();
            }
            net.step();
        }
        assert!(net.drain(50_000), "{name}");
        assert!(!net.stats.deadlock, "{name}");
    }
}

#[test]
fn adaptive_beats_oblivious_on_transpose_traffic() {
    // transpose concentrates XY traffic; adaptivity spreads it
    let mesh = Mesh2D::new(6, 6);
    let mut results = Vec::new();
    for (name, algo) in [
        ("xy", Box::new(XyRouting::new(mesh.clone())) as Box<dyn RoutingAlgorithm>),
        ("nara", Box::new(Nara::new(mesh.clone()))),
    ] {
        let mut net =
            Network::builder(Arc::new(mesh.clone())).build(algo.as_ref()).expect("valid config");
        let mut tf = TrafficSource::new(Pattern::Transpose { side: 6 }, 0.25, 4, 5);
        for _ in 0..600 {
            for (s, d, l) in tf.tick(&mesh, net.faults()) {
                net.send(s, d, l).unwrap();
            }
            net.step();
        }
        net.set_measuring(true);
        net.add_measured_cycles(1_500);
        for _ in 0..1_500 {
            for (s, d, l) in tf.tick(&mesh, net.faults()) {
                net.send(s, d, l).unwrap();
            }
            net.step();
        }
        net.set_measuring(false);
        net.drain(100_000);
        results.push((name, net.stats.latency.mean()));
    }
    let (xy, nara) = (results[0].1, results[1].1);
    assert!(
        nara < xy,
        "adaptive should beat oblivious under transpose: nara {nara:.1} vs xy {xy:.1}"
    );
}

#[test]
fn nafta_delivers_under_random_fault_batches() {
    let mesh = Mesh2D::new(6, 6);
    for seed in [3u64, 5, 8, 13] {
        let mut faults = FaultSet::new();
        faults.inject_random_links(&mesh, 5, true, seed);
        let algo = Nafta::new(mesh.clone());
        let mut net = Network::builder(Arc::new(mesh.clone())).build(&algo).expect("valid config");
        net.apply_fault_set(&faults);
        net.settle_control(100_000).unwrap();
        net.set_measuring(true);
        let mut tf = TrafficSource::new(Pattern::Uniform, 0.1, 4, seed);
        for _ in 0..800 {
            for (s, d, l) in tf.tick(&mesh, net.faults()) {
                net.send(s, d, l).unwrap();
            }
            net.step();
        }
        assert!(net.drain(100_000), "seed {seed}");
        assert!(!net.stats.deadlock, "seed {seed}");
        let total = net.stats.delivered_msgs + net.stats.unroutable_msgs;
        assert!(
            net.stats.delivered_msgs as f64 / total as f64 > 0.92,
            // NAFTA is not condition-3 complete: convex completion and
            // constant-memory fault state lose some awkward pairs (the paper
            // concedes exactly this); the bulk must still be delivered
            "seed {seed}: delivered {} of {}",
            net.stats.delivered_msgs,
            total
        );
    }
}

#[test]
fn rule_driven_route_c_matches_native_behaviour() {
    // the same workload through the native controller and through the
    // rule machine: identical delivery, minimality and step profile
    let cube = Hypercube::new(4);
    let native = RouteC::new(cube.clone());
    let cfg = ftrouter::core::configure("route_c", &ftrouter::algos::rules_src::route_c_source(4))
        .unwrap();
    let ruled = ftrouter::core::CubeRuleRouter::new(cfg, cube.clone());

    let mut results = Vec::new();
    for algo in [&native as &dyn RoutingAlgorithm, &ruled] {
        let mut net = Network::builder(Arc::new(cube.clone())).build(algo).expect("valid config");
        net.inject_node_fault(ftrouter::topo::NodeId(11));
        net.settle_control(10_000).unwrap();
        net.set_measuring(true);
        let mut tf = TrafficSource::new(Pattern::Uniform, 0.1, 4, 123);
        for _ in 0..600 {
            for (s, d, l) in tf.tick(&cube, net.faults()) {
                net.send(s, d, l).unwrap();
            }
            net.step();
        }
        assert!(net.drain(100_000), "{}", algo.name());
        assert!(!net.stats.deadlock, "{}", algo.name());
        results.push((
            net.stats.injected_msgs,
            net.stats.delivered_msgs,
            net.stats.unroutable_msgs,
            net.stats.decision_steps.max,
        ));
    }
    let (native_r, ruled_r) = (results[0], results[1]);
    // same traffic seed → same injected count
    assert_eq!(native_r.0, ruled_r.0);
    assert_eq!(native_r.2, 0, "native delivers everything");
    assert_eq!(ruled_r.2, 0, "rule-driven delivers everything");
    assert_eq!(native_r.1, ruled_r.1, "same delivery count");
    assert_eq!(native_r.3, 2, "native: two steps");
    assert_eq!(ruled_r.3, 2, "rule-driven: two steps, measured by the machine");
}
