//! Integration: the full rule pipeline — parse → compile → execute — on
//! the shipped programs, with the compiled interpreter differentially
//! tested against the reference evaluator on randomized states.

use ftrouter::rules::{compile, fire_reference, parse, CompileOptions, InputMap, RegFile, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Randomizes every register and input of a program within their domains.
fn randomize(prog: &ftrouter::rules::Program, rng: &mut StdRng) -> (RegFile, InputMap) {
    let ss = prog.sym_sizes();
    let mut regs = RegFile::new(prog);
    for (vi, v) in prog.vars.iter().enumerate() {
        // enumerate all cells through their index domains
        let dims: Vec<u64> = v.index_domains.iter().map(|d| d.size(&ss)).collect();
        let cells: u64 = dims.iter().product::<u64>().max(1);
        for cell in 0..cells {
            // unflatten into index values
            let mut rest = cell;
            let mut idx = Vec::new();
            for (k, d) in v.index_domains.iter().enumerate().rev() {
                let sz = dims[k];
                idx.push((d, rest % sz));
                rest /= sz;
            }
            idx.reverse();
            let idx_vals: Vec<Value> = idx.iter().map(|(d, k)| d.value_at(*k)).collect();
            let val = random_value(&v.elem, prog, rng);
            regs.write(prog, vi, &idx_vals, val).expect("value in domain");
        }
    }
    let mut im = InputMap::new();
    for inp in &prog.inputs {
        let dims: Vec<u64> = inp.index_domains.iter().map(|d| d.size(&ss)).collect();
        let cells: u64 = dims.iter().product::<u64>().max(1);
        for cell in 0..cells {
            let mut rest = cell;
            let mut idx = Vec::new();
            for (k, d) in inp.index_domains.iter().enumerate().rev() {
                let sz = dims[k];
                idx.push((d, rest % sz));
                rest /= sz;
            }
            idx.reverse();
            let idx_vals: Vec<Value> = idx.iter().map(|(d, k)| d.value_at(*k)).collect();
            let val = random_value(&inp.elem, prog, rng);
            im.set(prog, &inp.name, &idx_vals, val).expect("input in domain");
        }
    }
    (regs, im)
}

fn random_value(
    t: &ftrouter::rules::Type,
    prog: &ftrouter::rules::Program,
    rng: &mut StdRng,
) -> Value {
    let ss = prog.sym_sizes();
    match t {
        ftrouter::rules::Type::Scalar(d) => {
            let n = d.size(&ss);
            d.value_at(rng.gen_range(0..n))
        }
        ftrouter::rules::Type::Set(d) => {
            let n = d.size(&ss);
            let mask = rng.gen::<u64>() & ((1u64 << n) - 1).max(1);
            Value::Set { dom: *d, mask }
        }
    }
}

/// Core differential property: for every shipped program, rule base and
/// random state, the ARON-compiled table selects exactly the rule the
/// reference evaluator selects, produces the same return value and leaves
/// identical register state.
#[test]
fn compiled_interpreter_matches_reference_on_shipped_programs() {
    let mut rng = StdRng::seed_from_u64(2024);
    for (name, src) in ftrouter::algos::rules_src::all() {
        let prog = parse(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let compiled =
            compile(&prog, &CompileOptions::default()).unwrap_or_else(|e| panic!("{name}: {e}"));
        let ss = prog.sym_sizes();

        for (rbi, rb) in prog.rulebases.iter().enumerate() {
            for _trial in 0..60 {
                let (mut regs_a, im) = randomize(&prog, &mut rng);
                let mut regs_b = regs_a.clone();
                let params: Vec<Value> = rb
                    .params
                    .iter()
                    .map(|p| {
                        let n = p.dom.size(&ss);
                        p.dom.value_at(rng.gen_range(0..n))
                    })
                    .collect();

                let reference = fire_reference(&prog, rbi, &params, &mut regs_a, &im);
                let compiled_out = compiled.bases[rbi].fire(&prog, &params, &mut regs_b, &im);

                match (reference, compiled_out) {
                    (Ok(r), Ok(c)) => {
                        assert_eq!(
                            r, c,
                            "{name}/{}: outcome diverged (params {params:?})",
                            rb.name
                        );
                        assert_eq!(regs_a, regs_b, "{name}/{}: post-state diverged", rb.name);
                    }
                    (Err(_), Err(_)) => {} // both reject (e.g. domain overflow)
                    (r, c) => {
                        panic!("{name}/{}: one side errored: ref={r:?} compiled={c:?}", rb.name)
                    }
                }
            }
        }
    }
}

/// The compiled tables of the shipped programs stay within sane bounds —
/// a regression guard for accidental feature-space blow-ups.
#[test]
fn shipped_table_sizes_are_bounded() {
    for (name, src) in ftrouter::algos::rules_src::all() {
        let prog = parse(src).unwrap();
        let compiled = compile(&prog, &CompileOptions::default()).unwrap();
        for b in &compiled.bases {
            assert!(
                b.entries <= 1 << 14,
                "{name}/{}: {} entries — restructure the premises",
                prog.rulebases[b.rb].name,
                b.entries
            );
        }
    }
}

/// Pretty-printer round trip on every shipped program: the printed source
/// re-parses and compiles to identical rule tables.
#[test]
fn pretty_roundtrip_shipped_programs() {
    use ftrouter::rules::pretty::print_program;
    for (name, src) in ftrouter::algos::rules_src::all() {
        let p1 = parse(src).unwrap();
        let printed = print_program(&p1);
        let p2 =
            parse(&printed).unwrap_or_else(|e| panic!("{name} reparse failed: {e}\n{printed}"));
        let o = CompileOptions::default();
        let c1 = compile(&p1, &o).unwrap();
        let c2 = compile(&p2, &o).unwrap();
        for (a, b) in c1.bases.iter().zip(&c2.bases) {
            assert_eq!(a.table, b.table, "{name}: tables diverged");
            assert_eq!(a.width_bits, b.width_bits, "{name}");
        }
        // nft markers and names survive
        for (r1, r2) in p1.rulebases.iter().zip(&p2.rulebases) {
            assert_eq!(r1.name, r2.name);
            assert_eq!(r1.nft, r2.nft);
        }
    }
}
