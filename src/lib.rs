//! # ftrouter — flexible fault-tolerant router (IPPS'98 reproduction)
//!
//! Umbrella crate re-exporting the workspace: topologies (`topo`), the
//! cycle-level simulator (`sim`), the rule interpreter (`rules`), native
//! routing algorithms (`algos`), the configuration pipeline (`core`), the
//! observability layer (`obs`), and trace analysis (`trace`). Most
//! programs only need the [`prelude`].

pub use ftr_algos as algos;
pub use ftr_core as core;
pub use ftr_obs as obs;
pub use ftr_rules as rules;
pub use ftr_sim as sim;
pub use ftr_topo as topo;
pub use ftr_trace as trace;

/// The types nearly every experiment touches, importable in one line:
///
/// ```
/// use ftrouter::prelude::*;
/// # use std::sync::Arc;
///
/// let mesh = Mesh2D::new(4, 4);
/// let sink = Arc::new(RingSink::new(1024));
/// let mut net = Network::builder(Arc::new(mesh.clone()))
///     .trace(sink.clone())
///     .build(&XyRouting::new(mesh))
///     .expect("valid configuration");
/// net.send(NodeId(0), NodeId(15), 4).expect("endpoints alive");
/// assert!(net.drain(1_000));
/// assert!(!sink.is_empty());
/// ```
pub mod prelude {
    pub use ftr_algos::{Nafta, Nara, RouteC, XyRouting};
    pub use ftr_obs::{
        EventKind, InterpProfiler, JsonlSink, MetricsRegistry, RingSink, TraceEvent, TraceSink,
    };
    pub use ftr_rules::{InterpProbe, Machine, Program};
    pub use ftr_sim::{
        BuildError, FaultAction, FaultPlan, Network, NetworkBuilder, Pattern, RetryPolicy,
        SendError, SimConfig, SimEngine, SimStats, TrafficSource,
    };
    pub use ftr_topo::{FaultSet, Hypercube, Mesh2D, NodeId, PortId, Topology, VcId};
    pub use ftr_trace::{DiagnoserConfig, DiagnoserSink, JourneyBook, TraceReport};
}
