pub use ftr_algos as algos;
pub use ftr_core as core;
pub use ftr_rules as rules;
pub use ftr_sim as sim;
pub use ftr_topo as topo;
